//===- moore/Compiler.cpp - SystemVerilog to LLHD ------------------------------===//

#include "moore/Compiler.h"
#include "ir/IRBuilder.h"
#include "moore/Parser.h"

#include <map>
#include <optional>
#include <set>

using namespace llhd;
using namespace llhd::moore;

namespace {

/// Elaboration-time constant environment (parameters, genvars).
using ConstEnv = std::map<std::string, IntValue>;

/// Width info of a declared name.
struct NetInfo {
  unsigned Width = 1;      ///< Packed width.
  unsigned ArrayLen = 0;   ///< 0: scalar; else unpacked length.
  bool IsPort = false;
  bool IsOutput = false;
};

class Elaborator; // Forward.

//===----------------------------------------------------------------------===//
// Constant expression evaluation
//===----------------------------------------------------------------------===//

std::optional<IntValue> constEval(const Expr &E, const ConstEnv &Env) {
  switch (E.K) {
  case Expr::Kind::Number:
    return E.Num;
  case Expr::Kind::Ident: {
    auto It = Env.find(E.Name);
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case Expr::Kind::Unary: {
    auto A = constEval(*E.Ops[0], Env);
    if (!A)
      return std::nullopt;
    if (E.Op == "~")
      return A->logicalNot();
    if (E.Op == "-")
      return A->neg();
    if (E.Op == "!")
      return IntValue(32, A->isZero());
    return std::nullopt;
  }
  case Expr::Kind::Binary: {
    auto A = constEval(*E.Ops[0], Env);
    auto B = constEval(*E.Ops[1], Env);
    if (!A || !B)
      return std::nullopt;
    unsigned W = std::max(A->width(), B->width());
    IntValue X = A->zextOrTrunc(W), Y = B->zextOrTrunc(W);
    const std::string &Op = E.Op;
    if (Op == "+") return X.add(Y);
    if (Op == "-") return X.sub(Y);
    if (Op == "*") return X.mul(Y);
    if (Op == "/") return X.udiv(Y);
    if (Op == "%") return X.urem(Y);
    if (Op == "<<") return X.shl(Y.zextToU64());
    if (Op == ">>") return X.lshr(Y.zextToU64());
    if (Op == "==") return IntValue(32, X.eq(Y));
    if (Op == "!=") return IntValue(32, !X.eq(Y));
    if (Op == "<") return IntValue(32, X.ult(Y));
    if (Op == "<=") return IntValue(32, X.ule(Y));
    if (Op == ">") return IntValue(32, X.ugt(Y));
    if (Op == ">=") return IntValue(32, X.uge(Y));
    if (Op == "&") return X.logicalAnd(Y);
    if (Op == "|") return X.logicalOr(Y);
    if (Op == "^") return X.logicalXor(Y);
    if (Op == "&&") return IntValue(32, !X.isZero() && !Y.isZero());
    if (Op == "||") return IntValue(32, !X.isZero() || !Y.isZero());
    return std::nullopt;
  }
  case Expr::Kind::Ternary: {
    auto C = constEval(*E.Ops[0], Env);
    if (!C)
      return std::nullopt;
    return constEval(C->isZero() ? *E.Ops[2] : *E.Ops[1], Env);
  }
  case Expr::Kind::Call: {
    // $clog2 is ubiquitous in parameterised designs.
    if (E.Name == "$clog2" && E.Ops.size() == 1) {
      auto A = constEval(*E.Ops[0], Env);
      if (!A)
        return std::nullopt;
      uint64_t V = A->zextToU64();
      unsigned R = 0;
      while ((1ull << R) < V)
        ++R;
      return IntValue(32, R);
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Elaborator: modules to units
//===----------------------------------------------------------------------===//

class Elaborator {
public:
  Elaborator(SourceFile &SF, Module &M) : SF(SF), M(M), Ctx(M.context()) {}

  CompileResult run(const std::string &Top) {
    const ModuleDecl *TopDecl = moduleByName(Top);
    if (!TopDecl) {
      return {false, "top module '" + Top + "' not found", ""};
    }
    std::string UnitName = elaborateModule(*TopDecl, {});
    if (!Err.empty())
      return {false, Err, ""};
    return {true, "", UnitName};
  }

private:
  friend class ProcCodegen;

  const ModuleDecl *moduleByName(const std::string &N) {
    for (auto &MD : SF.Modules)
      if (MD->Name == N)
        return MD.get();
    return nullptr;
  }

  bool error(unsigned Line, const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  /// Elaborates (or reuses) a module instance with the given parameter
  /// overrides; returns the LLHD unit name.
  std::string elaborateModule(const ModuleDecl &MD,
                              const std::map<std::string, IntValue> &Over);

  /// Generates one procedural block as a process unit and instantiates
  /// it in the current entity.
  bool genProcess(const ProcBlock &PB, const std::string &PName,
                  const ConstEnv &Params,
                  const std::map<std::string, NetInfo> &Nets,
                  const std::map<std::string, Unit *> &Funcs,
                  std::map<std::string, Value *> &SigOf, IRBuilder &EB);

  SourceFile &SF;
  Module &M;
  Context &Ctx;
  std::string Err;
  std::map<std::string, std::string> Cache; ///< mangled key -> unit name.
  unsigned ProcCounter = 0;
};

//===----------------------------------------------------------------------===//
// Expression and statement codegen
//===----------------------------------------------------------------------===//

/// Generates code for one procedural context (process body, function
/// body, or entity-level continuous assigns).
class ProcCodegen {
public:
  ProcCodegen(Elaborator &E, Unit *U, const ConstEnv &Params,
              const std::map<std::string, NetInfo> &Nets,
              const std::map<std::string, Unit *> &Funcs)
      : B(U->context()), E(E), U(U), Ctx(U->context()), Params(Params),
        Nets(Nets), Funcs(Funcs) {}

  IRBuilder B;

  /// Signal bindings: net name -> signal-typed Value (argument or sig).
  std::map<std::string, Value *> Signals;
  /// Local variable cells: name -> var instruction (pointer).
  std::map<std::string, Value *> Locals;
  /// Shadow cells for blocking-assigned signals (always_comb).
  std::map<std::string, Value *> Shadows;
  /// Function arguments (when generating a function body).
  std::map<std::string, Value *> FuncArgs;
  /// Function return slot.
  Value *RetSlot = nullptr;
  std::string FuncName;

  bool failed() const { return Failed; }

  bool error(unsigned Line, const std::string &Msg) {
    Failed = true;
    E.error(Line, Msg);
    return false;
  }

  unsigned widthOfValue(Value *V) { return V->type()->bitWidth(); }

  Value *adapt(Value *V, unsigned W) {
    unsigned Cur = widthOfValue(V);
    if (Cur == W)
      return V;
    if (Cur < W)
      return B.cast(Opcode::Zext, Ctx.intType(W), V);
    return B.cast(Opcode::Trunc, Ctx.intType(W), V);
  }

  Value *boolOf(Value *V) {
    if (V->type()->isBool())
      return V;
    return B.cmp(Opcode::Neq, V, zeroLike(V));
  }

  Value *zeroLike(Value *V) {
    return B.constInt(IntValue(widthOfValue(V), 0));
  }

  /// Zero value of an arbitrary int/array type (for shadow inits).
  Value *zeroValue(Type *Ty) {
    if (auto *IT = dyn_cast<IntType>(Ty))
      return B.constInt(IntValue(IT->width(), 0));
    auto *AT = cast<ArrayType>(Ty);
    std::vector<Value *> Elems(AT->length(), zeroValue(AT->element()));
    return B.arrayCreate(Elems);
  }

  /// Width of an identifier as declared.
  std::optional<NetInfo> infoOf(const std::string &Name) {
    auto It = Nets.find(Name);
    if (It == Nets.end())
      return std::nullopt;
    return It->second;
  }

  //===------------------------------------------------------------------===//
  // Reads
  //===------------------------------------------------------------------===//

  /// Current value of a named object (signal probe / shadow / local /
  /// parameter / function argument).
  Value *readName(const std::string &Name, unsigned Line) {
    if (Value *P = lookupLocalOrArg(Name))
      return P;
    auto SIt = Shadows.find(Name);
    if (SIt != Shadows.end())
      return B.ld(SIt->second);
    auto SigIt = Signals.find(Name);
    if (SigIt != Signals.end()) {
      ReadSignals.insert(Name);
      return B.prb(SigIt->second, Name + "_p");
    }
    auto PIt = Params.find(Name);
    if (PIt != Params.end())
      return B.constInt(PIt->second);
    error(Line, "use of unknown name '" + Name + "'");
    return B.constInt(IntValue(1, 0));
  }

  Value *lookupLocalOrArg(const std::string &Name) {
    auto LIt = Locals.find(Name);
    if (LIt != Locals.end())
      return B.ld(LIt->second);
    auto FIt = FuncArgs.find(Name);
    if (FIt != FuncArgs.end())
      return FIt->second;
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  Value *genExpr(const Expr &Ex) {
    switch (Ex.K) {
    case Expr::Kind::Number:
      if (Ex.Op == "'1")
        return B.constInt(IntValue::allOnes(1)); // Widened by adapt.
      return B.constInt(Ex.Num);
    case Expr::Kind::Ident:
      // $random / $urandom are valid without parentheses.
      if (Ex.Name == "$random" || Ex.Name == "$urandom")
        return B.call(RandomFn(), {});
      return readName(Ex.Name, Ex.Line);
    case Expr::Kind::Unary: {
      if (Ex.Op == "&" || Ex.Op == "|" || Ex.Op == "^")
        return genReduction(Ex);
      Value *A = genExpr(*Ex.Ops[0]);
      if (Ex.Op == "~")
        return B.bitNot(A);
      if (Ex.Op == "-")
        return B.neg(A);
      if (Ex.Op == "!")
        return B.cmp(Opcode::Eq, A, zeroLike(A));
      error(Ex.Line, "unsupported unary operator " + Ex.Op);
      return A;
    }
    case Expr::Kind::Binary:
      return genBinary(Ex);
    case Expr::Kind::Ternary: {
      Value *C = boolOf(genExpr(*Ex.Ops[0]));
      Value *T = genExpr(*Ex.Ops[1]);
      Value *F = genExpr(*Ex.Ops[2]);
      unsigned W = std::max(widthOfValue(T), widthOfValue(F));
      T = adapt(T, W);
      F = adapt(F, W);
      return B.mux(B.arrayCreate({F, T}), C);
    }
    case Expr::Kind::Index:
      return genIndexRead(Ex);
    case Expr::Kind::Slice:
      return genSliceRead(Ex);
    case Expr::Kind::Concat: {
      // First operand is the most significant.
      unsigned Total = 0;
      std::vector<Value *> Parts;
      for (const ExprPtr &Op : Ex.Ops) {
        Parts.push_back(genExpr(*Op));
        Total += widthOfValue(Parts.back());
      }
      Value *Acc = B.constInt(IntValue(Total, 0));
      unsigned Shift = Total;
      for (Value *P : Parts) {
        unsigned W = widthOfValue(P);
        Shift -= W;
        Value *Wide = adapt(P, Total);
        Value *Sh = B.shift(Opcode::Shl, Wide,
                            B.constInt(IntValue(32, Shift)));
        Acc = B.bitOr(Acc, Sh);
      }
      return Acc;
    }
    case Expr::Kind::Repl: {
      auto N = constEval(*Ex.Ops[0], Params);
      if (!N) {
        error(Ex.Line, "replication count must be constant");
        return B.constInt(IntValue(1, 0));
      }
      Value *V = genExpr(*Ex.Ops[1]);
      unsigned W = widthOfValue(V);
      unsigned Count = N->zextToU64();
      unsigned Total = std::max(1u, W * Count);
      Value *Acc = B.constInt(IntValue(Total, 0));
      for (unsigned I = 0; I != Count; ++I) {
        Value *Sh = B.shift(Opcode::Shl, adapt(V, Total),
                            B.constInt(IntValue(32, I * W)));
        Acc = B.bitOr(Acc, Sh);
      }
      return Acc;
    }
    case Expr::Kind::Call: {
      if (Ex.Name == "$random" || Ex.Name == "$urandom")
        return B.call(RandomFn(), {});
      if (Ex.Name == "$test$plusargs" || Ex.Name == "$plusarg$value")
        return genPlusargs(Ex);
      auto FIt = Funcs.find(Ex.Name);
      if (FIt == Funcs.end()) {
        error(Ex.Line, "call of unknown function '" + Ex.Name + "'");
        return B.constInt(IntValue(1, 0));
      }
      Unit *F = FIt->second;
      std::vector<Value *> Args;
      for (unsigned I = 0; I != Ex.Ops.size(); ++I) {
        Value *A = genExpr(*Ex.Ops[I]);
        if (I < F->inputs().size())
          A = adapt(A, F->input(I)->type()->bitWidth());
        Args.push_back(A);
      }
      return B.call(F, Args);
    }
    case Expr::Kind::Str:
      error(Ex.Line, "string literal outside a system-call argument");
      return B.constInt(IntValue(1, 0));
    }
    return B.constInt(IntValue(1, 0));
  }

  /// $test$plusargs("KEY") and $plusarg$value("KEY", default): the key
  /// is encoded into the intrinsic name (RtValue has no string kind);
  /// the engines decode it and answer from SimOptions::Plusargs.
  Value *genPlusargs(const Expr &Ex) {
    if (Ex.Ops.empty() || Ex.Ops[0]->K != Expr::Kind::Str) {
      error(Ex.Line, Ex.Name + " requires a string-literal key");
      return B.constInt(IntValue(1, 0));
    }
    const std::string &Key = Ex.Ops[0]->Name;
    if (Ex.Name == "$test$plusargs") {
      Unit *F = E.M.intrinsic("llhd.plusarg.test." + Key);
      F->setReturnType(Ctx.boolType());
      return B.call(F, {});
    }
    if (Ex.Ops.size() != 2) {
      error(Ex.Line, "$plusarg$value requires (\"KEY\", default)");
      return B.constInt(IntValue(32, 0));
    }
    Unit *F = E.M.intrinsic("llhd.plusarg.value." + Key);
    F->setReturnType(Ctx.intType(32));
    if (F->inputs().empty())
      F->addInput(Ctx.intType(32), "default");
    return B.call(F, {adapt(genExpr(*Ex.Ops[1]), 32)});
  }

  Value *genReduction(const Expr &Ex) {
    Value *A = genExpr(*Ex.Ops[0]);
    unsigned W = widthOfValue(A);
    if (Ex.Op == "&")
      return B.cmp(Opcode::Eq, A, B.constInt(IntValue::allOnes(W)));
    if (Ex.Op == "|")
      return B.cmp(Opcode::Neq, A, zeroLike(A));
    // ^: parity via a xor chain over the bits.
    Value *Acc = B.exts(A, 0, 1);
    for (unsigned I = 1; I != W; ++I)
      Acc = B.bitXor(Acc, B.exts(A, I, 1));
    return Acc;
  }

  Value *genBinary(const Expr &Ex) {
    const std::string &Op = Ex.Op;
    if (Op == "&&" || Op == "||") {
      Value *L = boolOf(genExpr(*Ex.Ops[0]));
      Value *R = boolOf(genExpr(*Ex.Ops[1]));
      return Op == "&&" ? B.bitAnd(L, R) : B.bitOr(L, R);
    }
    Value *L = genExpr(*Ex.Ops[0]);
    Value *R = genExpr(*Ex.Ops[1]);
    if (Op == "<<" || Op == ">>" || Op == ">>>") {
      Opcode O = Op == "<<" ? Opcode::Shl
                            : (Op == ">>" ? Opcode::Shr : Opcode::Ashr);
      return B.shift(O, L, R);
    }
    unsigned W = std::max(widthOfValue(L), widthOfValue(R));
    L = adapt(L, W);
    R = adapt(R, W);
    if (Op == "+") return B.add(L, R);
    if (Op == "-") return B.sub(L, R);
    if (Op == "*") return B.mul(L, R);
    if (Op == "/") return B.udiv(L, R);
    if (Op == "%") return B.binary(Opcode::Urem, L, R);
    if (Op == "&") return B.bitAnd(L, R);
    if (Op == "|") return B.bitOr(L, R);
    if (Op == "^") return B.bitXor(L, R);
    if (Op == "==") return B.cmp(Opcode::Eq, L, R);
    if (Op == "!=") return B.cmp(Opcode::Neq, L, R);
    if (Op == "<") return B.cmp(Opcode::Ult, L, R);
    if (Op == "<=") return B.cmp(Opcode::Ule, L, R);
    if (Op == ">") return B.cmp(Opcode::Ugt, L, R);
    if (Op == ">=") return B.cmp(Opcode::Uge, L, R);
    error(Ex.Line, "unsupported binary operator " + Op);
    return L;
  }

  Value *genIndexRead(const Expr &Ex) {
    Value *Base = readName(Ex.Name, Ex.Line);
    auto Idx = constEval(*Ex.Ops[0], Params);
    if (Base->type()->isArray()) {
      if (Idx)
        return B.extf(Base, Idx->zextToU64());
      Value *I = genExpr(*Ex.Ops[0]);
      return B.mux(Base, I);
    }
    // Bit select on an integer.
    if (Idx)
      return B.exts(Base, Idx->zextToU64(), 1);
    Value *I = genExpr(*Ex.Ops[0]);
    Value *Sh = B.shift(Opcode::Shr, Base, I);
    return B.cast(Opcode::Trunc, Ctx.boolType(), Sh);
  }

  Value *genSliceRead(const Expr &Ex) {
    Value *Base = readName(Ex.Name, Ex.Line);
    if (Ex.Op == "+:") {
      auto W = constEval(*Ex.Ops[1], Params);
      if (!W) {
        error(Ex.Line, "indexed part-select width must be constant");
        return Base;
      }
      auto Off = constEval(*Ex.Ops[0], Params);
      if (Off)
        return B.exts(Base, Off->zextToU64(), W->zextToU64());
      Value *O = genExpr(*Ex.Ops[0]);
      Value *Sh = B.shift(Opcode::Shr, Base, O);
      return B.cast(Opcode::Trunc, Ctx.intType(W->zextToU64()), Sh);
    }
    auto Msb = constEval(*Ex.Ops[0], Params);
    auto Lsb = constEval(*Ex.Ops[1], Params);
    if (!Msb || !Lsb) {
      error(Ex.Line, "slice bounds must be constant");
      return Base;
    }
    unsigned M = Msb->zextToU64(), L = Lsb->zextToU64();
    return B.exts(Base, L, M - L + 1);
  }

  //===------------------------------------------------------------------===//
  // Assignments
  //===------------------------------------------------------------------===//

  /// Emits "wait for <delay>" into a fresh continuation block.
  void suspendFor(const ExprPtr &D) {
    BasicBlock *Next = U->createBlock("after.bdelay");
    B.wait(Next, {}, delayOf(D));
    B.setInsertPoint(Next);
  }

  Value *defaultDelay() {
    // A fresh constant per use: a cached one could end up referenced
    // from blocks its defining block does not dominate.
    return B.constTime(Time());
  }

  Value *delayOf(const ExprPtr &D) {
    if (!D)
      return defaultDelay();
    return B.constTime(Time(D->Num.zextToU64()));
  }

  /// Assigns \p Val to the lvalue \p Lhs.
  void genAssign(const Expr &Lhs, Value *Val, bool NonBlocking,
                 const ExprPtr &Delay, unsigned Line) {
    switch (Lhs.K) {
    case Expr::Kind::Ident:
      genAssignWhole(Lhs.Name, Val, NonBlocking, Delay, Line);
      return;
    case Expr::Kind::Index:
    case Expr::Kind::Slice:
      genAssignPart(Lhs, Val, NonBlocking, Delay, Line);
      return;
    default:
      error(Line, "unsupported assignment target");
    }
  }

  void genAssignWhole(const std::string &Name, Value *Val,
                      bool NonBlocking, const ExprPtr &Delay,
                      unsigned Line) {
    if (Value *LocalCell = localCell(Name)) {
      Val = adaptTo(Val, pointeeOf(LocalCell));
      B.st(LocalCell, Val);
      return;
    }
    auto ShIt = Shadows.find(Name);
    if (ShIt != Shadows.end() && !NonBlocking) {
      // Blocking signal write: "x = #t v" evaluates v, suspends for t,
      // then assigns; the shadow makes the value readable immediately
      // afterwards, and a delta drive updates the signal itself.
      if (Delay)
        suspendFor(Delay);
      Val = adaptTo(Val, pointeeOf(ShIt->second));
      B.st(ShIt->second, Val);
      ShadowDirty.insert(Name);
      auto SIt2 = Signals.find(Name);
      if (SIt2 != Signals.end()) {
        WrittenSignals.insert(Name);
        B.drv(SIt2->second, Val, defaultDelay());
      }
      return;
    }
    auto SigIt = Signals.find(Name);
    if (SigIt == Signals.end()) {
      if (FuncName == Name && RetSlot) {
        B.st(RetSlot, adaptTo(Val, pointeeOf(RetSlot)));
        return;
      }
      error(Line, "assignment to unknown name '" + Name + "'");
      return;
    }
    WrittenSignals.insert(Name);
    Type *Inner = cast<SignalType>(SigIt->second->type())->inner();
    Val = adaptTo(Val, Inner);
    B.drv(SigIt->second, Val, delayOf(Delay));
  }

  void genAssignPart(const Expr &Lhs, Value *Val, bool NonBlocking,
                     const ExprPtr &Delay, unsigned Line) {
    const std::string &Name = Lhs.Name;
    bool IsSlice = Lhs.K == Expr::Kind::Slice;

    // Local variable or shadow: read-modify-write the cell.
    Value *Cell = localCell(Name);
    bool IsShadow = false;
    if (!Cell) {
      auto ShIt = Shadows.find(Name);
      if (ShIt != Shadows.end() && !NonBlocking) {
        Cell = ShIt->second;
        IsShadow = true;
      }
    }
    if (Cell) {
      if (IsShadow && Delay)
        suspendFor(Delay);
      Value *Old = B.ld(Cell);
      Value *New = insertIntoValue(Old, Lhs, Val, Line);
      B.st(Cell, New);
      if (IsShadow) {
        ShadowDirty.insert(Name);
        auto SIt2 = Signals.find(Name);
        if (SIt2 != Signals.end()) {
          WrittenSignals.insert(Name);
          B.drv(SIt2->second, New, defaultDelay());
        }
      }
      return;
    }

    auto SigIt = Signals.find(Name);
    if (SigIt == Signals.end()) {
      error(Line, "assignment to unknown name '" + Name + "'");
      return;
    }
    WrittenSignals.insert(Name);
    Value *Sig = SigIt->second;
    Type *Inner = cast<SignalType>(Sig->type())->inner();

    // Constant part select: drive the sub-signal directly.
    if (IsSlice) {
      auto Msb = constEval(*Lhs.Ops[0], Params);
      auto Lsb = constEval(*Lhs.Ops[1], Params);
      if (Msb && Lsb && Lhs.Op != "+:") {
        unsigned L = Lsb->zextToU64(), W = Msb->zextToU64() - L + 1;
        Value *Sub = B.exts(Sig, L, W);
        B.drv(Sub, adapt(Val, W), delayOf(Delay));
        return;
      }
    } else {
      auto Idx = constEval(*Lhs.Ops[0], Params);
      if (Idx) {
        if (Inner->isArray()) {
          Value *Sub = B.extf(Sig, Idx->zextToU64());
          Type *ElemTy = cast<ArrayType>(Inner)->element();
          B.drv(Sub, adaptTo(Val, ElemTy), delayOf(Delay));
        } else {
          Value *Sub = B.exts(Sig, Idx->zextToU64(), 1);
          B.drv(Sub, adapt(Val, 1), delayOf(Delay));
        }
        return;
      }
    }

    // Dynamic index: read-modify-write the whole signal.
    ReadSignals.insert(Name);
    Value *Old = B.prb(Sig);
    Value *New = insertIntoValue(Old, Lhs, Val, Line);
    B.drv(Sig, New, delayOf(Delay));
  }

  /// Value-level insert of \p Val into \p Old at the position named by
  /// the index/slice expression \p Lhs.
  Value *insertIntoValue(Value *Old, const Expr &Lhs, Value *Val,
                         unsigned Line) {
    if (Lhs.K == Expr::Kind::Slice) {
      if (Lhs.Op == "+:") {
        // Indexed part select x[base +: W]. The width is constant by
        // the language rules; the base may be dynamic.
        auto Wc = constEval(*Lhs.Ops[1], Params);
        if (!Wc) {
          error(Line, "indexed part-select width must be constant");
          return Old;
        }
        unsigned FullW = widthOfValue(Old);
        unsigned W = Wc->zextToU64();
        if (W > FullW)
          W = FullW;
        auto Off = constEval(*Lhs.Ops[0], Params);
        if (Off)
          return B.inss(Old, adapt(Val, W), Off->zextToU64());
        // Dynamic base: shift/mask read-modify-write on the packed
        // vector — (old & ~(ones<<i)) | ((val zext)<<i).
        Value *I = adapt(genExpr(*Lhs.Ops[0]), FullW);
        Value *Ones = adapt(B.constInt(IntValue::allOnes(W)), FullW);
        Value *Mask = B.bitNot(B.shift(Opcode::Shl, Ones, I));
        Value *Bits = B.shift(Opcode::Shl, adapt(adapt(Val, W), FullW), I);
        return B.bitOr(B.bitAnd(Old, Mask), Bits);
      }
      auto Msb = constEval(*Lhs.Ops[0], Params);
      auto Lsb = constEval(*Lhs.Ops[1], Params);
      if (!Msb || !Lsb) {
        error(Line, "dynamic [msb:lsb] slice assignment is unsupported "
                    "(use an indexed part select x[base +: width])");
        return Old;
      }
      unsigned L = Lsb->zextToU64(), W = Msb->zextToU64() - L + 1;
      return B.inss(Old, adapt(Val, W), L);
    }
    auto Idx = constEval(*Lhs.Ops[0], Params);
    if (Old->type()->isArray()) {
      auto *AT = cast<ArrayType>(Old->type());
      Value *ElemVal = adaptTo(Val, AT->element());
      if (Idx)
        return B.insf(Old, ElemVal, Idx->zextToU64());
      // Dynamic element write: rebuild the array with per-element muxes.
      Value *I = genExpr(*Lhs.Ops[0]);
      std::vector<Value *> Elems;
      for (unsigned K = 0; K != AT->length(); ++K) {
        Value *OldElem = B.extf(Old, K);
        Value *IsK = B.cmp(Opcode::Eq, adapt(I, 32),
                           B.constInt(IntValue(32, K)));
        Elems.push_back(B.mux(B.arrayCreate({OldElem, ElemVal}), IsK));
      }
      return B.arrayCreate(Elems);
    }
    // Dynamic bit write on an integer: (x & ~(1<<i)) | (bit<<i).
    if (Idx)
      return B.inss(Old, adapt(Val, 1), Idx->zextToU64());
    unsigned W = widthOfValue(Old);
    Value *I = genExpr(*Lhs.Ops[0]);
    Value *One = B.constInt(IntValue(W, 1));
    Value *Mask = B.bitNot(B.shift(Opcode::Shl, One, I));
    Value *Bit = B.shift(Opcode::Shl, adapt(Val, W), I);
    return B.bitOr(B.bitAnd(Old, Mask), Bit);
  }

  Type *pointeeOf(Value *Cell) {
    return cast<PointerType>(Cell->type())->pointee();
  }

  Value *adaptTo(Value *Val, Type *Ty) {
    if (Val->type() == Ty)
      return Val;
    if (Ty->isInt())
      return adapt(Val, cast<IntType>(Ty)->width());
    return Val; // Arrays must already match.
  }

  Value *localCell(const std::string &Name) {
    auto It = Locals.find(Name);
    return It == Locals.end() ? nullptr : It->second;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  /// Generates \p S; returns false if the statement diverges (halt).
  bool genStmt(const Stmt &S) {
    if (Failed)
      return true;
    switch (S.K) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Sub : S.Stmts)
        if (!genStmt(*Sub))
          return false;
      return true;
    case Stmt::Kind::VarDecl: {
      unsigned W = 32;
      if (S.WidthMsb) {
        auto Msb = constEval(*S.WidthMsb, Params);
        auto Lsb = constEval(*S.WidthLsb, Params);
        if (!Msb || !Lsb)
          return error(S.Line, "variable bounds must be constant"), true;
        W = Msb->zextToU64() - Lsb->zextToU64() + 1;
      }
      Value *Init;
      if (S.UnpackedLo) {
        auto Lo = constEval(*S.UnpackedLo, Params);
        auto Hi = constEval(*S.UnpackedHi, Params);
        if (!Lo || !Hi)
          return error(S.Line, "unpacked bounds must be constant"), true;
        uint64_t A = Lo->zextToU64(), Bv = Hi->zextToU64();
        unsigned Len = (A < Bv ? Bv - A : A - Bv) + 1;
        Init = zeroValue(Ctx.arrayType(Len, Ctx.intType(W)));
      } else {
        Init = S.Init ? adapt(genExpr(*S.Init), W)
                      : B.constInt(IntValue(W, 0));
      }
      Locals[S.Name] = B.var(Init, S.Name);
      return true;
    }
    case Stmt::Kind::Assign: {
      Value *Val = genExpr(*S.Rhs);
      genAssign(*S.Lhs, Val, S.NonBlocking, S.Delay, S.Line);
      return true;
    }
    case Stmt::Kind::If: {
      Value *C = boolOf(genExpr(*S.Cond));
      BasicBlock *ThenBB = U->createBlock("if.then");
      BasicBlock *ElseBB = S.Else ? U->createBlock("if.else") : nullptr;
      BasicBlock *JoinBB = U->createBlock("if.join");
      B.condBr(C, S.Else ? ElseBB : JoinBB, ThenBB);
      B.setInsertPoint(ThenBB);
      bool ThenLive = genStmt(*S.Then);
      if (ThenLive)
        B.br(JoinBB);
      bool ElseLive = true;
      if (S.Else) {
        B.setInsertPoint(ElseBB);
        ElseLive = genStmt(*S.Else);
        if (ElseLive)
          B.br(JoinBB);
      }
      B.setInsertPoint(JoinBB);
      if (!ThenLive && !ElseLive)
        return false;
      return true;
    }
    case Stmt::Kind::Case: {
      Value *C = genExpr(*S.Cond);
      BasicBlock *JoinBB = U->createBlock("case.join");
      const Stmt::CaseItem *Default = nullptr;
      std::vector<std::pair<Value *, const Stmt *>> Arms;
      for (const auto &Item : S.Items) {
        if (Item.Labels.empty()) {
          Default = &Item;
          continue;
        }
        Value *Match = nullptr;
        for (const ExprPtr &L : Item.Labels) {
          Value *LV = adapt(genExpr(*L), widthOfValue(C));
          Value *Eq = B.cmp(Opcode::Eq, C, LV);
          Match = Match ? B.bitOr(Match, Eq) : Eq;
        }
        Arms.push_back({Match, Item.Body.get()});
      }
      for (auto &[Match, Body] : Arms) {
        BasicBlock *ArmBB = U->createBlock("case.arm");
        BasicBlock *NextBB = U->createBlock("case.next");
        B.condBr(Match, NextBB, ArmBB);
        B.setInsertPoint(ArmBB);
        if (genStmt(*Body))
          B.br(JoinBB);
        B.setInsertPoint(NextBB);
      }
      if (Default) {
        if (genStmt(*Default->Body))
          B.br(JoinBB);
      } else {
        B.br(JoinBB);
      }
      B.setInsertPoint(JoinBB);
      return true;
    }
    case Stmt::Kind::For:
      return genFor(S);
    case Stmt::Kind::While:
    case Stmt::Kind::DoWhile: {
      BasicBlock *BodyBB = U->createBlock("loop.body");
      BasicBlock *CheckBB = U->createBlock("loop.check");
      BasicBlock *ExitBB = U->createBlock("loop.exit");
      B.br(S.K == Stmt::Kind::DoWhile ? BodyBB : CheckBB);
      B.setInsertPoint(BodyBB);
      BreakTargets.push_back(ExitBB);
      bool Live = genStmt(*S.Body);
      BreakTargets.pop_back();
      if (Live)
        B.br(CheckBB);
      B.setInsertPoint(CheckBB);
      Value *C = boolOf(genExpr(*S.Cond));
      B.condBr(C, ExitBB, BodyBB);
      B.setInsertPoint(ExitBB);
      return true;
    }
    case Stmt::Kind::Repeat: {
      auto N = constEval(*S.Cond, Params);
      if (N && N->zextToU64() <= 256) {
        for (uint64_t I = 0; I != N->zextToU64(); ++I)
          if (!genStmt(*S.Body))
            return false;
        return true;
      }
      // Runtime repeat: counter loop.
      Value *Cnt = B.var(B.constInt(IntValue(32, 0)), "repeat_i");
      Value *Limit = adapt(genExpr(*S.Cond), 32);
      BasicBlock *CheckBB = U->createBlock("repeat.check");
      BasicBlock *BodyBB = U->createBlock("repeat.body");
      BasicBlock *ExitBB = U->createBlock("repeat.exit");
      B.br(CheckBB);
      B.setInsertPoint(CheckBB);
      Value *C = B.cmp(Opcode::Ult, B.ld(Cnt), Limit);
      B.condBr(C, ExitBB, BodyBB);
      B.setInsertPoint(BodyBB);
      BreakTargets.push_back(ExitBB);
      bool Live = genStmt(*S.Body);
      BreakTargets.pop_back();
      if (Live) {
        B.st(Cnt, B.add(B.ld(Cnt), B.constInt(IntValue(32, 1))));
        B.br(CheckBB);
      }
      B.setInsertPoint(ExitBB);
      return true;
    }
    case Stmt::Kind::Forever: {
      BasicBlock *BodyBB = U->createBlock("forever.body");
      BasicBlock *ExitBB = U->createBlock("forever.exit");
      B.br(BodyBB);
      B.setInsertPoint(BodyBB);
      BreakTargets.push_back(ExitBB);
      bool Live = genStmt(*S.Body);
      BreakTargets.pop_back();
      if (Live)
        B.br(BodyBB);
      B.setInsertPoint(ExitBB);
      // Reachable only through break.
      return true;
    }
    case Stmt::Kind::Break: {
      if (BreakTargets.empty())
        return error(S.Line, "break outside of a loop"), true;
      B.br(BreakTargets.back());
      B.setInsertPoint(U->createBlock("after.break"));
      return false;
    }
    case Stmt::Kind::Delay: {
      // "#t;" — flush comb shadows would be wrong here; delays only
      // appear in testbench initial blocks.
      BasicBlock *NextBB = U->createBlock("after.delay");
      Value *T = B.constTime(Time(S.Cond->Num.zextToU64()));
      B.wait(NextBB, {}, T);
      B.setInsertPoint(NextBB);
      return true;
    }
    case Stmt::Kind::ExprStmt: {
      const Expr &C = *S.Rhs;
      if (C.Name == "assert") {
        Value *V = boolOf(genExpr(*C.Ops[0]));
        Unit *Assert = AssertFn();
        B.call(Assert, {V});
        return true;
      }
      if (C.Name == "$finish") {
        B.call(FinishFn(), {});
        return true;
      }
      if (C.Name == "$display")
        return true;
      genExpr(C); // User function called for effect.
      return true;
    }
    }
    return true;
  }

  bool genFor(const Stmt &S) {
    // Attempt compile-time unrolling (constant trip count).
    ConstEnv LoopEnv = Params;
    auto Init = constEval(*S.Init, Params);
    bool Unrolled = false;
    if (Init && S.Name == S.StepVar) {
      std::vector<IntValue> Trips;
      IntValue I = *Init;
      for (unsigned K = 0; K != 1024; ++K) {
        LoopEnv[S.Name] = I;
        auto C = constEval(*S.Cond, LoopEnv);
        if (!C) {
          Trips.clear();
          break;
        }
        if (C->isZero()) {
          Unrolled = true;
          break;
        }
        Trips.push_back(I);
        auto Next = constEval(*S.Step, LoopEnv);
        if (!Next) {
          Trips.clear();
          break;
        }
        I = *Next;
      }
      if (Unrolled) {
        // Materialise the induction variable as a local so the body can
        // read it; each copy stores the iteration constant.
        Value *Cell = B.var(B.constInt(Init->zextOrTrunc(32)), S.Name);
        Locals[S.Name] = Cell;
        for (const IntValue &T : Trips) {
          B.st(Cell, B.constInt(T.zextOrTrunc(32)));
          if (!genStmt(*S.Body))
            return false;
        }
        Locals.erase(S.Name);
        return true;
      }
    }

    // Runtime loop.
    Value *Cell = B.var(adapt(genExpr(*S.Init), 32), S.Name);
    Locals[S.Name] = Cell;
    BasicBlock *CheckBB = U->createBlock("for.check");
    BasicBlock *BodyBB = U->createBlock("for.body");
    BasicBlock *ExitBB = U->createBlock("for.exit");
    B.br(CheckBB);
    B.setInsertPoint(CheckBB);
    Value *C = boolOf(genExpr(*S.Cond));
    B.condBr(C, ExitBB, BodyBB);
    B.setInsertPoint(BodyBB);
    BreakTargets.push_back(ExitBB);
    bool Live = genStmt(*S.Body);
    BreakTargets.pop_back();
    if (Live) {
      B.st(Cell, adapt(genExpr(*S.Step), 32));
      B.br(CheckBB);
    }
    B.setInsertPoint(ExitBB);
    Locals.erase(S.Name);
    return true;
  }

  Unit *AssertFn() {
    Unit *F = E.M.intrinsic("llhd.assert");
    if (F->inputs().empty())
      F->addInput(Ctx.boolType(), "cond");
    return F;
  }
  Unit *FinishFn() { return E.M.intrinsic("llhd.finish"); }
  Unit *RandomFn() {
    Unit *F = E.M.intrinsic("llhd.random");
    F->setReturnType(Ctx.intType(32));
    return F;
  }

  std::set<std::string> ReadSignals;
  std::set<std::string> WrittenSignals;
  std::set<std::string> ShadowDirty;

private:
  Elaborator &E;
  Unit *U;
  Context &Ctx;
  const ConstEnv &Params;
  const std::map<std::string, NetInfo> &Nets;
  const std::map<std::string, Unit *> &Funcs;
  std::vector<BasicBlock *> BreakTargets;
  bool Failed = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Read/write scanning
//===----------------------------------------------------------------------===//

/// Collects identifier names referenced by an expression.
static void collectIdents(const Expr &E, std::vector<std::string> &Out) {
  if (E.K == Expr::Kind::Ident || E.K == Expr::Kind::Index ||
      E.K == Expr::Kind::Slice)
    Out.push_back(E.Name);
  for (const ExprPtr &Op : E.Ops)
    collectIdents(*Op, Out);
}

/// Collects names read and written by a statement tree.
static void scanStmt(const Stmt &S, std::vector<std::string> &Reads,
                     std::vector<std::string> &Writes,
                     std::vector<std::string> &BlockingWrites) {
  switch (S.K) {
  case Stmt::Kind::Assign:
    collectIdents(*S.Rhs, Reads);
    Writes.push_back(S.Lhs->Name);
    if (!S.NonBlocking)
      BlockingWrites.push_back(S.Lhs->Name);
    if (S.Lhs->K != Expr::Kind::Ident) {
      Reads.push_back(S.Lhs->Name); // RMW paths read the old value.
      for (const ExprPtr &Op : S.Lhs->Ops)
        collectIdents(*Op, Reads);
    }
    break;
  case Stmt::Kind::VarDecl:
    if (S.Init)
      collectIdents(*S.Init, Reads);
    break;
  default:
    if (S.Cond && S.K != Stmt::Kind::Delay)
      collectIdents(*S.Cond, Reads);
    if (S.Init)
      collectIdents(*S.Init, Reads);
    if (S.Step)
      collectIdents(*S.Step, Reads);
    if (S.Rhs)
      collectIdents(*S.Rhs, Reads);
    break;
  }
  auto Recurse = [&](const StmtPtr &P) {
    if (P)
      scanStmt(*P, Reads, Writes, BlockingWrites);
  };
  Recurse(S.Then);
  Recurse(S.Else);
  Recurse(S.Body);
  for (const StmtPtr &Sub : S.Stmts)
    Recurse(Sub);
  for (const auto &Item : S.Items) {
    for (const ExprPtr &L : Item.Labels)
      collectIdents(*L, Reads);
    Recurse(Item.Body);
  }
}

//===----------------------------------------------------------------------===//
// Procedural blocks
//===----------------------------------------------------------------------===//

bool Elaborator::genProcess(const ProcBlock &PB, const std::string &PName,
                            const ConstEnv &Params,
                            const std::map<std::string, NetInfo> &Nets,
                            const std::map<std::string, Unit *> &Funcs,
                            std::map<std::string, Value *> &SigOf,
                            IRBuilder &EB) {
  // Determine the signal interface: written nets become outputs,
  // read-only nets inputs.
  std::vector<std::string> Reads, Writes, BlockingWrites;
  scanStmt(*PB.Body, Reads, Writes, BlockingWrites);
  for (const EdgeEvent &Ev : PB.Edges)
    Reads.push_back(Ev.Signal);
  std::set<std::string> WriteSet, ReadSet;
  for (const std::string &W : Writes)
    if (Nets.count(W))
      WriteSet.insert(W);
  for (const std::string &R : Reads)
    if (Nets.count(R) && !WriteSet.count(R))
      ReadSet.insert(R);

  Unit *P = M.createProcess(PName);
  ProcCodegen CG(*this, P, Params, Nets, Funcs);
  auto sigTypeOf = [&](const std::string &Name) -> Type * {
    const NetInfo &NI = Nets.at(Name);
    Type *Inner = Ctx.intType(NI.Width);
    if (NI.ArrayLen)
      Inner = Ctx.arrayType(NI.ArrayLen, Inner);
    return Ctx.signalType(Inner);
  };
  for (const std::string &R : ReadSet)
    CG.Signals[R] = P->addInput(sigTypeOf(R), R);
  for (const std::string &W : WriteSet)
    CG.Signals[W] = P->addOutput(sigTypeOf(W), W);

  BasicBlock *Entry = P->createBlock("entry");
  CG.B.setInsertPoint(Entry);

  // Blocking-written signals get a shadow cell so later reads within one
  // activation observe the written value (SystemVerilog variable
  // semantics). The signal itself is driven a delta later on every
  // blocking write, so shadow and signal stay in lock-step.
  for (const std::string &W : BlockingWrites) {
    if (!WriteSet.count(W) || CG.Shadows.count(W))
      continue;
    Type *Inner = cast<SignalType>(CG.Signals[W]->type())->inner();
    CG.Shadows[W] = CG.B.var(CG.zeroValue(Inner), W + "_sh");
  }

  switch (PB.Kind) {
  case ProcKind::Initial: {
    CG.genStmt(*PB.Body);
    CG.B.halt();
    break;
  }
  case ProcKind::Always: {
    // Plain `always` without sensitivity: an infinite loop; the body
    // must contain delays (clock generators).
    BasicBlock *Body = P->createBlock("body");
    CG.B.br(Body);
    CG.B.setInsertPoint(Body);
    if (CG.genStmt(*PB.Body))
      CG.B.br(Body);
    break;
  }
  case ProcKind::AlwaysComb:
  case ProcKind::AlwaysLatch: {
    BasicBlock *Body = P->createBlock("body");
    CG.B.br(Body);
    CG.B.setInsertPoint(Body);
    CG.genStmt(*PB.Body);
    std::vector<Value *> Observed;
    for (const std::string &R : ReadSet)
      Observed.push_back(CG.Signals[R]);
    CG.B.wait(Body, Observed);
    break;
  }
  case ProcKind::AlwaysFF: {
    // Sample the edge signals, wait, then detect the edges (the
    // canonical two-TR shape of Figure 5). The sample block IS the
    // process entry so that temporal region analysis sees exactly the
    // init/check structure the desequentialiser expects.
    BasicBlock *Sample = Entry;
    BasicBlock *Check = P->createBlock("check");
    BasicBlock *Body = P->createBlock("ffbody");
    std::vector<Value *> Olds;
    std::vector<Value *> EdgeSigs;
    for (const EdgeEvent &Ev : PB.Edges) {
      auto It = CG.Signals.find(Ev.Signal);
      if (It == CG.Signals.end())
        return error(PB.Line, "unknown edge signal '" + Ev.Signal + "'");
      EdgeSigs.push_back(It->second);
      Olds.push_back(CG.B.prb(It->second, Ev.Signal + "0"));
    }
    CG.B.wait(Check, EdgeSigs);
    CG.B.setInsertPoint(Check);
    Value *Trigger = nullptr;
    for (unsigned I = 0; I != PB.Edges.size(); ++I) {
      Value *New = CG.B.prb(EdgeSigs[I], PB.Edges[I].Signal + "1");
      Value *Old = Olds[I];
      Value *Edge;
      if (PB.Edges[I].Posedge)
        Edge = CG.B.bitAnd(CG.B.bitNot(Old), New);
      else
        Edge = CG.B.bitAnd(Old, CG.B.bitNot(New));
      Trigger = Trigger ? CG.B.bitOr(Trigger, Edge) : Edge;
    }
    CG.B.condBr(Trigger, Sample, Body);
    CG.B.setInsertPoint(Body);
    if (CG.genStmt(*PB.Body))
      CG.B.br(Sample);
    break;
  }
  }
  if (CG.failed())
    return false;

  std::vector<Value *> Ins, Outs;
  for (Argument *A : P->inputs())
    Ins.push_back(SigOf[A->name()]);
  for (Argument *A : P->outputs())
    Outs.push_back(SigOf[A->name()]);
  EB.inst(P, Ins, Outs);
  return true;
}

//===----------------------------------------------------------------------===//
// Module elaboration
//===----------------------------------------------------------------------===//

std::string
Elaborator::elaborateModule(const ModuleDecl &MD,
                            const std::map<std::string, IntValue> &Over) {
  // Resolve parameters.
  ConstEnv Params;
  std::string Mangle = MD.Name;
  for (const Parameter &P : MD.Params) {
    auto OIt = Over.find(P.Name);
    if (OIt != Over.end() && !P.Local) {
      Params[P.Name] = OIt->second;
    } else {
      auto V = constEval(*P.Default, Params);
      if (!V) {
        error(P.Line, "parameter '" + P.Name + "' is not constant");
        return "";
      }
      Params[P.Name] = *V;
    }
    if (!P.Local)
      Mangle += "$" + Params[P.Name].toString();
  }
  auto CIt = Cache.find(Mangle);
  if (CIt != Cache.end())
    return CIt->second;

  // Pick a unique unit name: base name if free, else the mangled one.
  std::string UnitName = M.unitByName(MD.Name) ? Mangle : MD.Name;
  if (M.unitByName(UnitName)) {
    error(MD.Line, "duplicate unit name " + UnitName);
    return "";
  }
  Cache[Mangle] = UnitName;

  // Net table: ports + variables with widths.
  std::map<std::string, NetInfo> Nets;
  auto widthOfRange = [&](const Range &R, unsigned Line,
                          unsigned &W) -> bool {
    if (R.isScalar()) {
      W = 1;
      return true;
    }
    auto Msb = constEval(*R.Msb, Params);
    auto Lsb = constEval(*R.Lsb, Params);
    if (!Msb || !Lsb)
      return error(Line, "range bounds must be constant");
    W = Msb->zextToU64() - Lsb->zextToU64() + 1;
    return true;
  };
  for (const Port &P : MD.Ports) {
    NetInfo NI;
    if (!widthOfRange(P.Packed, P.Line, NI.Width))
      return "";
    NI.IsPort = true;
    NI.IsOutput = P.Direction == Port::Dir::Out;
    Nets[P.Name] = NI;
  }
  for (const Net &N : MD.Nets) {
    auto Existing = Nets.find(N.Name);
    if (Existing != Nets.end())
      continue; // Port re-declaration.
    NetInfo NI;
    if (!widthOfRange(N.Packed, N.Line, NI.Width))
      return "";
    if (N.UnpackedLo) {
      auto Lo = constEval(*N.UnpackedLo, Params);
      auto Hi = constEval(*N.UnpackedHi, Params);
      if (!Lo || !Hi) {
        error(N.Line, "unpacked bounds must be constant");
        return "";
      }
      uint64_t A = Lo->zextToU64(), Bv = Hi->zextToU64();
      NI.ArrayLen = (A < Bv ? Bv - A : A - Bv) + 1;
    }
    Nets[N.Name] = NI;
  }

  // Create the entity.
  Unit *Ent = M.createEntity(UnitName);
  std::map<std::string, Value *> SigOf;
  for (const Port &P : MD.Ports) {
    Type *Ty = Ctx.signalType(Ctx.intType(Nets[P.Name].Width));
    Argument *A = P.Direction == Port::Dir::In
                      ? Ent->addInput(Ty, P.Name)
                      : Ent->addOutput(Ty, P.Name);
    SigOf[P.Name] = A;
  }
  IRBuilder EB(Ent->entityBlock());
  for (const Net &N : MD.Nets) {
    if (SigOf.count(N.Name))
      continue;
    const NetInfo &NI = Nets[N.Name];
    Value *Init;
    if (NI.ArrayLen) {
      std::vector<Value *> Elems(NI.ArrayLen,
                                 EB.constInt(IntValue(NI.Width, 0)));
      Init = EB.arrayCreate(Elems);
    } else {
      Init = EB.constInt(IntValue(NI.Width, 0));
    }
    SigOf[N.Name] = EB.sig(Init, N.Name);
  }

  // Functions.
  std::map<std::string, Unit *> Funcs;
  for (const FunctionDecl &F : MD.Functions) {
    Unit *FU = M.createFunction(UnitName + "." + F.Name);
    unsigned RetW = 1;
    if (!F.RetPacked.isScalar()) {
      auto Msb = constEval(*F.RetPacked.Msb, Params);
      auto Lsb = constEval(*F.RetPacked.Lsb, Params);
      if (Msb && Lsb)
        RetW = Msb->zextToU64() - Lsb->zextToU64() + 1;
    }
    FU->setReturnType(Ctx.intType(RetW));
    for (const Port &A : F.Args) {
      unsigned W = 1;
      widthOfRange(A.Packed, A.Line, W);
      FU->addInput(Ctx.intType(W), A.Name);
    }
    Funcs[F.Name] = FU;

    ProcCodegen CG(*this, FU, Params, Nets, Funcs);
    BasicBlock *Entry = FU->createBlock("entry");
    CG.B.setInsertPoint(Entry);
    for (Argument *A : FU->inputs())
      CG.FuncArgs[A->name()] = A;
    CG.RetSlot = CG.B.var(CG.B.constInt(IntValue(RetW, 0)), F.Name);
    CG.FuncName = F.Name;
    for (const StmtPtr &S : F.Body)
      CG.genStmt(*S);
    CG.B.ret(CG.B.ld(CG.RetSlot));
    if (CG.failed())
      return "";
  }

  // Continuous assigns become one combinational process each.
  unsigned AssignIdx = 0;
  for (const ContAssign &A : MD.Assigns) {
    std::string PName = UnitName + ".assign" + std::to_string(AssignIdx++);
    Unit *P = M.createProcess(PName);
    ProcCodegen CG(*this, P, Params, Nets, Funcs);

    std::map<std::string, Value *> ArgOf;
    std::vector<std::string> InNames;
    collectIdents(*A.Rhs, InNames);
    if (A.Lhs->K != Expr::Kind::Ident)
      for (const ExprPtr &Op : A.Lhs->Ops)
        collectIdents(*Op, InNames);
    std::string OutName = A.Lhs->Name;
    auto sigTypeOf = [&](const std::string &Name) -> Type * {
      const NetInfo &NI = Nets.at(Name);
      Type *Inner = Ctx.intType(NI.Width);
      if (NI.ArrayLen)
        Inner = Ctx.arrayType(NI.ArrayLen, Inner);
      return Ctx.signalType(Inner);
    };
    for (const std::string &N : InNames) {
      if (!Nets.count(N) || ArgOf.count(N) || N == OutName)
        continue;
      ArgOf[N] = P->addInput(sigTypeOf(N), N);
    }
    if (!Nets.count(OutName)) {
      error(A.Line, "assign to unknown net '" + OutName + "'");
      return "";
    }
    ArgOf[OutName] = P->addOutput(sigTypeOf(OutName), OutName);
    CG.Signals = ArgOf;

    BasicBlock *Entry = P->createBlock("entry");
    CG.B.setInsertPoint(Entry);
    Value *Val = CG.genExpr(*A.Rhs);
    CG.genAssign(*A.Lhs, Val, /*NonBlocking=*/true, nullptr, A.Line);
    std::vector<Value *> Observed;
    for (auto &[N, V] : ArgOf)
      if (N != OutName)
        Observed.push_back(V);
    CG.B.wait(Entry, Observed);
    if (CG.failed())
      return "";

    std::vector<Value *> Ins, Outs;
    for (Argument *Arg : P->inputs())
      Ins.push_back(SigOf[Arg->name()]);
    for (Argument *Arg : P->outputs())
      Outs.push_back(SigOf[Arg->name()]);
    EB.inst(P, Ins, Outs);
  }

  // Procedural blocks.
  unsigned ProcIdx = 0;
  for (const ProcBlock &PB : MD.Procs) {
    std::string PName = UnitName + ".proc" + std::to_string(ProcIdx++);
    if (!genProcess(PB, PName, Params, Nets, Funcs, SigOf, EB))
      return "";
  }

  // Child instantiations.
  for (const Instantiation &I : MD.Insts) {
    const ModuleDecl *Child = moduleByName(I.ModuleName);
    if (!Child) {
      error(I.Line, "unknown module '" + I.ModuleName + "'");
      return "";
    }
    std::map<std::string, IntValue> ChildOver;
    for (const auto &[PN, PE] : I.ParamOverrides) {
      auto V = constEval(*PE, Params);
      if (!V) {
        error(I.Line, "parameter override must be constant");
        return "";
      }
      ChildOver[PN] = *V;
    }
    std::string ChildUnit = elaborateModule(*Child, ChildOver);
    if (ChildUnit.empty())
      return "";
    Unit *CU = M.unitByName(ChildUnit);

    std::map<std::string, std::string> Conn;
    for (const auto &[PN, PE] : I.Connections) {
      if (PE->K != Expr::Kind::Ident) {
        error(I.Line, "port connections must be plain nets");
        return "";
      }
      Conn[PN] = PE->Name;
    }
    auto connect = [&](Argument *A) -> Value * {
      std::string Net;
      auto CIt2 = Conn.find(A->name());
      if (CIt2 != Conn.end())
        Net = CIt2->second;
      else if (I.WildcardRest)
        Net = A->name();
      else {
        error(I.Line, "port '" + A->name() + "' not connected");
        return nullptr;
      }
      auto SIt = SigOf.find(Net);
      if (SIt == SigOf.end()) {
        error(I.Line, "connection to unknown net '" + Net + "'");
        return nullptr;
      }
      return SIt->second;
    };
    std::vector<Value *> Ins, Outs;
    for (Argument *A : CU->inputs()) {
      Value *V = connect(A);
      if (!V)
        return "";
      Ins.push_back(V);
    }
    for (Argument *A : CU->outputs()) {
      Value *V = connect(A);
      if (!V)
        return "";
      Outs.push_back(V);
    }
    EB.inst(CU, Ins, Outs);
  }

  return UnitName;
}


//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

CompileResult llhd::moore::compileSystemVerilog(const std::string &Src,
                                                const std::string &TopModule,
                                                Module &M) {
  SourceFile SF;
  std::string Error;
  if (!parseSource(Src, SF, Error))
    return {false, Error, ""};
  Elaborator E(SF, M);
  return E.run(TopModule);
}

std::string llhd::moore::detectTopModule(const std::string &Src,
                                         std::string &Error) {
  SourceFile SF;
  if (!parseSource(Src, SF, Error))
    return "";
  std::set<std::string> Instantiated;
  for (const auto &MD : SF.Modules)
    for (const Instantiation &I : MD->Insts)
      Instantiated.insert(I.ModuleName);
  std::vector<std::string> Tops;
  for (const auto &MD : SF.Modules)
    if (!Instantiated.count(MD->Name))
      Tops.push_back(MD->Name);
  if (Tops.size() == 1)
    return Tops.front();
  if (Tops.empty()) {
    Error = SF.Modules.empty()
                ? "no modules in source"
                : "no top module (every module is instantiated); "
                  "use --top=<module>";
  } else {
    Error = "multiple top candidates (use --top=<module>):";
    for (const std::string &T : Tops)
      Error += " " + T;
  }
  return "";
}
