//===- moore/Lexer.cpp - SystemVerilog lexer -----------------------------------===//

#include "moore/Lexer.h"

#include <cctype>

using namespace llhd;
using namespace llhd::moore;

namespace {

struct LexState {
  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
  std::string &Error;

  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char get() {
    char C = peek();
    if (C == '\n')
      ++Line;
    ++Pos;
    return C;
  }
  bool eof() const { return Pos >= Src.size(); }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        get();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!eof() && peek() != '\n')
          get();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        get();
        get();
        while (!eof() && !(peek() == '*' && peek(1) == '/'))
          get();
        if (!eof()) {
          get();
          get();
        }
        continue;
      }
      // `timescale and other directives: skip the line.
      if (C == '`') {
        while (!eof() && peek() != '\n')
          get();
        continue;
      }
      return;
    }
  }

  /// Digits in the given radix (with '_' separators); also x/z mapped to 0.
  std::string lexDigits(unsigned Radix) {
    std::string S;
    for (;;) {
      char C = peek();
      if (C == '_') {
        get();
        continue;
      }
      bool Ok = false;
      if (Radix == 2)
        Ok = C == '0' || C == '1';
      else if (Radix == 8)
        Ok = C >= '0' && C <= '7';
      else if (Radix == 10)
        Ok = std::isdigit(static_cast<unsigned char>(C));
      else
        Ok = std::isxdigit(static_cast<unsigned char>(C));
      if (!Ok)
        break;
      S += get();
    }
    return S;
  }

  Token lexNumber() {
    Token T;
    T.Kind = Tok::Number;
    T.Line = Line;
    std::string Digits = lexDigits(10);
    unsigned Width = 32;
    bool Sized = false;
    unsigned Radix = 10;
    if (peek() == '\'') {
      get();
      if (!Digits.empty()) {
        Width = std::stoul(Digits);
        Sized = true;
      }
      char B = std::tolower(get());
      if (B == 'h')
        Radix = 16;
      else if (B == 'b')
        Radix = 2;
      else if (B == 'o')
        Radix = 8;
      else if (B == 'd')
        Radix = 10;
      else if (B == '0' || B == '1') {
        // '0 / '1 fill literals.
        T.Num = B == '0' ? IntValue(1, 0) : IntValue::allOnes(1);
        T.Sized = false;
        T.Text = std::string("'") + B;
        return T;
      } else {
        Error = "line " + std::to_string(Line) + ": bad based literal";
        return T;
      }
      Digits = lexDigits(Radix);
    }
    // Parse digits in radix into a wide value, then truncate.
    IntValue V(std::max(Width, 64u), 0);
    IntValue R(std::max(Width, 64u), Radix);
    for (char C : Digits) {
      unsigned D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else
        D = C - 'A' + 10;
      V = V.mul(R).add(IntValue(std::max(Width, 64u), D));
    }
    T.Num = V.zextOrTrunc(Width);
    T.Sized = Sized;
    T.Text = Digits;
    return T;
  }
};

} // namespace

std::vector<Token> llhd::moore::lexSystemVerilog(const std::string &Src,
                                                 std::string &Error) {
  std::vector<Token> Out;
  LexState S{Src, 0, 1, Error};
  static const char *MultiPunct[] = {
      "<<<", ">>>", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
      "+=", "-=", "++", "--", "->", "::", "+:",
  };
  while (true) {
    S.skipTrivia();
    if (S.eof())
      break;
    char C = S.peek();
    Token T;
    T.Line = S.Line;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
        C == '$') {
      T.Kind = Tok::Ident;
      while (std::isalnum(static_cast<unsigned char>(S.peek())) ||
             S.peek() == '_' || S.peek() == '$')
        T.Text += S.get();
      Out.push_back(std::move(T));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '\'') {
      Out.push_back(S.lexNumber());
      if (!Error.empty())
        return Out;
      continue;
    }
    if (C == '"') {
      S.get();
      T.Kind = Tok::String;
      while (!S.eof() && S.peek() != '"')
        T.Text += S.get();
      if (!S.eof())
        S.get();
      Out.push_back(std::move(T));
      continue;
    }
    // Punctuation: longest match first.
    T.Kind = Tok::Punct;
    bool Matched = false;
    for (const char *P : MultiPunct) {
      size_t L = std::char_traits<char>::length(P);
      if (S.Src.compare(S.Pos, L, P) == 0) {
        T.Text = P;
        for (size_t I = 0; I != L; ++I)
          S.get();
        Matched = true;
        break;
      }
    }
    if (!Matched)
      T.Text = std::string(1, S.get());
    Out.push_back(std::move(T));
  }
  Token E;
  E.Kind = Tok::Eof;
  E.Line = S.Line;
  Out.push_back(E);
  return Out;
}
