//===- moore/Parser.cpp - SystemVerilog parser ---------------------------------===//

#include "moore/Parser.h"
#include "moore/Lexer.h"

#include <map>

using namespace llhd;
using namespace llhd::moore;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, SourceFile &Out, std::string &Error)
      : Toks(std::move(Toks)), Out(Out), Err(Error) {}

  bool run() {
    while (!at(Tok::Eof)) {
      if (!parseModule())
        return false;
    }
    return true;
  }

private:
  //===------------------------------------------------------------------===//
  // Token helpers
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned Ahead = 1) const {
    return Toks[std::min(Pos + Ahead, Toks.size() - 1)];
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool at(Tok K) const { return cur().Kind == K; }
  bool atIdent(const char *S) const {
    return cur().Kind == Tok::Ident && cur().Text == S;
  }
  bool atPunct(const char *S) const {
    return cur().Kind == Tok::Punct && cur().Text == S;
  }
  bool acceptIdent(const char *S) {
    if (!atIdent(S))
      return false;
    advance();
    return true;
  }
  bool acceptPunct(const char *S) {
    if (!atPunct(S))
      return false;
    advance();
    return true;
  }
  bool error(const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(cur().Line) + ": " + Msg +
            " (near '" + cur().Text + "')";
    return false;
  }
  bool expectPunct(const char *S) {
    if (acceptPunct(S))
      return true;
    return error(std::string("expected '") + S + "'");
  }
  bool expectIdent(const char *S) {
    if (acceptIdent(S))
      return true;
    return error(std::string("expected '") + S + "'");
  }
  bool parseIdent(std::string &Name) {
    if (cur().Kind != Tok::Ident)
      return error("expected identifier");
    Name = cur().Text;
    advance();
    return true;
  }

  //===------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===//

  int binaryPrec(const std::string &Op) {
    if (Op == "||") return 1;
    if (Op == "&&") return 2;
    if (Op == "|") return 3;
    if (Op == "^") return 4;
    if (Op == "&") return 5;
    if (Op == "==" || Op == "!=") return 6;
    if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=") return 7;
    if (Op == "<<" || Op == ">>" || Op == ">>>") return 8;
    if (Op == "+" || Op == "-") return 9;
    if (Op == "*" || Op == "/" || Op == "%") return 10;
    return 0;
  }

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr C = parseBinary(1);
    if (!C || !atPunct("?"))
      return C;
    advance();
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Ternary;
    E->Line = C->Line;
    ExprPtr T = parseTernary();
    if (!T || !expectPunct(":"))
      return nullptr;
    ExprPtr F = parseTernary();
    if (!F)
      return nullptr;
    E->Ops.push_back(std::move(C));
    E->Ops.push_back(std::move(T));
    E->Ops.push_back(std::move(F));
    return E;
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr L = parseUnary();
    if (!L)
      return nullptr;
    for (;;) {
      if (cur().Kind != Tok::Punct)
        return L;
      int Prec = binaryPrec(cur().Text);
      if (Prec == 0 || Prec < MinPrec)
        return L;
      std::string Op = cur().Text;
      advance();
      ExprPtr R = parseBinary(Prec + 1);
      if (!R)
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Binary;
      E->Op = Op;
      E->Line = L->Line;
      E->Ops.push_back(std::move(L));
      E->Ops.push_back(std::move(R));
      L = std::move(E);
    }
  }

  ExprPtr parseUnary() {
    for (const char *Op : {"~", "!", "-", "&", "|", "^", "+"}) {
      if (atPunct(Op)) {
        unsigned Line = cur().Line;
        advance();
        ExprPtr Inner = parseUnary();
        if (!Inner)
          return nullptr;
        if (Op == std::string("+"))
          return Inner;
        auto E = std::make_unique<Expr>();
        E->K = Expr::Kind::Unary;
        E->Op = Op;
        E->Line = Line;
        E->Ops.push_back(std::move(Inner));
        return E;
      }
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (!E)
      return nullptr;
    while (atPunct("[")) {
      if (E->K != Expr::Kind::Ident)
        return error("can only index identifiers"), nullptr;
      advance();
      ExprPtr I0 = parseExpr();
      if (!I0)
        return nullptr;
      auto N = std::make_unique<Expr>();
      N->Name = E->Name;
      N->Line = E->Line;
      if (acceptPunct(":")) {
        ExprPtr I1 = parseExpr();
        if (!I1)
          return nullptr;
        N->K = Expr::Kind::Slice;
        N->Ops.push_back(std::move(I0));
        N->Ops.push_back(std::move(I1));
      } else if (acceptPunct("+:")) {
        // "[base +: width]" indexed part select ("+:" is one token, so
        // a dynamic base expression parses cleanly before it).
        ExprPtr W = parseExpr();
        if (!W)
          return nullptr;
        N->K = Expr::Kind::Slice;
        N->Op = "+:";
        N->Ops.push_back(std::move(I0));
        N->Ops.push_back(std::move(W));
      } else {
        N->K = Expr::Kind::Index;
        N->Ops.push_back(std::move(I0));
      }
      if (!expectPunct("]"))
        return nullptr;
      E = std::move(N);
    }
    return E;
  }

  ExprPtr parsePrimary() {
    auto E = std::make_unique<Expr>();
    E->Line = cur().Line;
    if (cur().Kind == Tok::String) {
      // String literals only reach codegen as system-call arguments
      // ($test$plusargs / $plusarg$value keys).
      E->K = Expr::Kind::Str;
      E->Name = cur().Text;
      advance();
      return E;
    }
    if (cur().Kind == Tok::Number) {
      E->K = Expr::Kind::Number;
      E->Num = cur().Num;
      E->Sized = cur().Sized;
      // '0 / '1 fill literals keep Sized false and width 1; codegen
      // extends to context width.
      if (cur().Text == "'1")
        E->Op = "'1";
      advance();
      return E;
    }
    if (atPunct("(")) {
      advance();
      ExprPtr Inner = parseExpr();
      if (!Inner || !expectPunct(")"))
        return nullptr;
      return Inner;
    }
    if (atPunct("{")) {
      advance();
      // Concat or replication {N{expr}}.
      ExprPtr First = parseExpr();
      if (!First)
        return nullptr;
      if (atPunct("{")) {
        advance();
        ExprPtr Val = parseExpr();
        if (!Val || !expectPunct("}") || !expectPunct("}"))
          return nullptr;
        E->K = Expr::Kind::Repl;
        E->Ops.push_back(std::move(First));
        E->Ops.push_back(std::move(Val));
        return E;
      }
      E->K = Expr::Kind::Concat;
      E->Ops.push_back(std::move(First));
      while (acceptPunct(",")) {
        ExprPtr Next = parseExpr();
        if (!Next)
          return nullptr;
        E->Ops.push_back(std::move(Next));
      }
      if (!expectPunct("}"))
        return nullptr;
      return E;
    }
    if (cur().Kind == Tok::Ident) {
      std::string Name = cur().Text;
      advance();
      if (atPunct("(")) {
        advance();
        E->K = Expr::Kind::Call;
        E->Name = Name;
        if (!atPunct(")")) {
          do {
            ExprPtr A = parseExpr();
            if (!A)
              return nullptr;
            E->Ops.push_back(std::move(A));
          } while (acceptPunct(","));
        }
        if (!expectPunct(")"))
          return nullptr;
        return E;
      }
      E->K = Expr::Kind::Ident;
      E->Name = Name;
      return E;
    }
    error("expected expression");
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  StmtPtr parseStmt() {
    auto S = std::make_unique<Stmt>();
    S->Line = cur().Line;
    if (acceptIdent("begin")) {
      S->K = Stmt::Kind::Block;
      while (!atIdent("end")) {
        if (at(Tok::Eof)) {
          error("unexpected end of input in block");
          return nullptr;
        }
        StmtPtr Sub = parseStmt();
        if (!Sub)
          return nullptr;
        S->Stmts.push_back(std::move(Sub));
      }
      advance(); // end
      return S;
    }
    if (acceptIdent("if")) {
      S->K = Stmt::Kind::If;
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (acceptIdent("else")) {
        S->Else = parseStmt();
        if (!S->Else)
          return nullptr;
      }
      return S;
    }
    if (acceptIdent("for")) {
      S->K = Stmt::Kind::For;
      if (!expectPunct("("))
        return nullptr;
      // "int i = 0" or "i = 0".
      acceptIdent("int");
      acceptIdent("automatic");
      acceptIdent("bit");
      if (!parseIdent(S->Name) || !expectPunct("="))
        return nullptr;
      S->Init = parseExpr();
      if (!S->Init || !expectPunct(";"))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(";"))
        return nullptr;
      // Step: "i = i + 1" or "i++".
      if (!parseIdent(S->StepVar))
        return nullptr;
      if (acceptPunct("++")) {
        auto One = std::make_unique<Expr>();
        One->K = Expr::Kind::Number;
        One->Num = IntValue(32, 1);
        auto Ref = std::make_unique<Expr>();
        Ref->K = Expr::Kind::Ident;
        Ref->Name = S->StepVar;
        auto Add = std::make_unique<Expr>();
        Add->K = Expr::Kind::Binary;
        Add->Op = "+";
        Add->Ops.push_back(std::move(Ref));
        Add->Ops.push_back(std::move(One));
        S->Step = std::move(Add);
      } else if (acceptPunct("=")) {
        S->Step = parseExpr();
        if (!S->Step)
          return nullptr;
      } else if (acceptPunct("+")) {
        if (!expectPunct("="))
          return nullptr;
        ExprPtr Rhs = parseExpr();
        if (!Rhs)
          return nullptr;
        auto Ref = std::make_unique<Expr>();
        Ref->K = Expr::Kind::Ident;
        Ref->Name = S->StepVar;
        auto Add = std::make_unique<Expr>();
        Add->K = Expr::Kind::Binary;
        Add->Op = "+";
        Add->Ops.push_back(std::move(Ref));
        Add->Ops.push_back(std::move(Rhs));
        S->Step = std::move(Add);
      } else {
        error("unsupported for-loop step");
        return nullptr;
      }
      if (!expectPunct(")"))
        return nullptr;
      S->Body = parseStmt();
      return S->Body ? std::move(S) : nullptr;
    }
    if (acceptIdent("while")) {
      S->K = Stmt::Kind::While;
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      S->Body = parseStmt();
      return S->Body ? std::move(S) : nullptr;
    }
    if (acceptIdent("do")) {
      S->K = Stmt::Kind::DoWhile;
      S->Body = parseStmt();
      if (!S->Body || !expectIdent("while") || !expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")") || !expectPunct(";"))
        return nullptr;
      return S;
    }
    if (acceptIdent("repeat")) {
      S->K = Stmt::Kind::Repeat;
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      S->Body = parseStmt();
      return S->Body ? std::move(S) : nullptr;
    }
    if (acceptIdent("forever")) {
      S->K = Stmt::Kind::Forever;
      S->Body = parseStmt();
      return S->Body ? std::move(S) : nullptr;
    }
    if (acceptIdent("case")) {
      S->K = Stmt::Kind::Case;
      if (!expectPunct("("))
        return nullptr;
      S->Cond = parseExpr();
      if (!S->Cond || !expectPunct(")"))
        return nullptr;
      while (!atIdent("endcase")) {
        if (at(Tok::Eof)) {
          error("unexpected end of input in case");
          return nullptr;
        }
        Stmt::CaseItem Item;
        if (acceptIdent("default")) {
          acceptPunct(":");
        } else {
          do {
            ExprPtr L = parseExpr();
            if (!L)
              return nullptr;
            Item.Labels.push_back(std::move(L));
          } while (acceptPunct(","));
          if (!expectPunct(":"))
            return nullptr;
        }
        Item.Body = parseStmt();
        if (!Item.Body)
          return nullptr;
        S->Items.push_back(std::move(Item));
      }
      advance(); // endcase
      return S;
    }
    if (atPunct("#")) {
      advance();
      S->K = Stmt::Kind::Delay;
      S->Cond = parseDelayExpr();
      if (!S->Cond)
        return nullptr;
      if (acceptPunct(";"))
        return S;
      // "#t stmt" — delay followed by a statement (always #5 clk = ~clk).
      S->Body = parseStmt();
      return S->Body ? std::move(S) : nullptr;
    }
    if (atIdent("assert")) {
      advance();
      S->K = Stmt::Kind::ExprStmt;
      auto Call = std::make_unique<Expr>();
      Call->K = Expr::Kind::Call;
      Call->Name = "assert";
      Call->Line = S->Line;
      if (!expectPunct("("))
        return nullptr;
      ExprPtr C = parseExpr();
      if (!C || !expectPunct(")"))
        return nullptr;
      Call->Ops.push_back(std::move(C));
      S->Rhs = std::move(Call);
      // Optional "else $error(...)" clause is ignored.
      if (acceptIdent("else"))
        skipToSemicolon();
      acceptPunct(";");
      return S;
    }
    if (atIdent("$finish") || atIdent("$display") || atIdent("$error")) {
      bool IsFinish = cur().Text == "$finish";
      advance();
      if (atPunct("(")) {
        skipBalancedParens();
      }
      if (!expectPunct(";"))
        return nullptr;
      S->K = Stmt::Kind::ExprStmt;
      auto Call = std::make_unique<Expr>();
      Call->K = Expr::Kind::Call;
      Call->Name = IsFinish ? "$finish" : "$display";
      S->Rhs = std::move(Call);
      return S;
    }
    if (acceptIdent("break")) {
      S->K = Stmt::Kind::Break;
      if (!expectPunct(";"))
        return nullptr;
      return S;
    }
    // Local variable declaration: "bit [7:0] x;" / "int i = 0;" /
    // "automatic bit [31:0] i = 0;".
    if (atIdent("automatic") || atIdent("bit") || atIdent("logic") ||
        atIdent("int") || atIdent("integer")) {
      acceptIdent("automatic");
      bool IsInt = atIdent("int") || atIdent("integer");
      advance(); // type keyword
      ExprPtr Msb, Lsb;
      if (!IsInt && atPunct("[")) {
        advance();
        Msb = parseExpr();
        if (!Msb || !expectPunct(":"))
          return nullptr;
        Lsb = parseExpr();
        if (!Lsb || !expectPunct("]"))
          return nullptr;
      }
      // Comma-separated declarators become a block of VarDecls.
      S->K = Stmt::Kind::Block;
      do {
        auto D = std::make_unique<Stmt>();
        D->K = Stmt::Kind::VarDecl;
        D->Line = cur().Line;
        if (Msb) {
          D->WidthMsb = cloneExpr(*Msb);
          D->WidthLsb = cloneExpr(*Lsb);
        }
        if (!parseIdent(D->Name))
          return nullptr;
        if (acceptPunct("[")) {
          D->UnpackedLo = parseExpr();
          if (!D->UnpackedLo || !expectPunct(":"))
            return nullptr;
          D->UnpackedHi = parseExpr();
          if (!D->UnpackedHi || !expectPunct("]"))
            return nullptr;
        }
        if (acceptPunct("=")) {
          D->Init = parseExpr();
          if (!D->Init)
            return nullptr;
        }
        S->Stmts.push_back(std::move(D));
      } while (acceptPunct(","));
      if (!expectPunct(";"))
        return nullptr;
      if (S->Stmts.size() == 1)
        return std::move(S->Stmts[0]);
      return S;
    }

    // Assignment: lvalue (<=|=) [#delay] expr ;  — or a call statement.
    ExprPtr Lhs = parsePostfix();
    if (!Lhs)
      return nullptr;
    if (Lhs->K == Expr::Kind::Call && acceptPunct(";")) {
      S->K = Stmt::Kind::ExprStmt;
      S->Rhs = std::move(Lhs);
      return S;
    }
    S->K = Stmt::Kind::Assign;
    if (acceptPunct("<=")) {
      S->NonBlocking = true;
    } else if (acceptPunct("=")) {
      S->NonBlocking = false;
    } else {
      error("expected assignment");
      return nullptr;
    }
    if (acceptPunct("#")) {
      S->Delay = parseDelayExpr();
      if (!S->Delay)
        return nullptr;
    }
    S->Lhs = std::move(Lhs);
    S->Rhs = parseExpr();
    if (!S->Rhs || !expectPunct(";"))
      return nullptr;
    return S;
  }

  /// A delay expression: number with optional time unit (e.g. 2ns → the
  /// femtosecond count as a Number expr tagged Op="time").
  ExprPtr parseDelayExpr() {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Number;
    E->Op = "time";
    E->Line = cur().Line;
    if (cur().Kind != Tok::Number) {
      error("expected delay literal");
      return nullptr;
    }
    uint64_t N = cur().Num.zextToU64();
    advance();
    uint64_t Scale = 1000000; // Default: ns.
    if (cur().Kind == Tok::Ident) {
      const std::string &U = cur().Text;
      if (U == "fs") Scale = 1;
      else if (U == "ps") Scale = 1000;
      else if (U == "ns") Scale = 1000000;
      else if (U == "us") Scale = 1000000000ull;
      else if (U == "ms") Scale = 1000000000000ull;
      else if (U == "s") Scale = 1000000000000000ull;
      else Scale = 0;
      if (Scale != 0)
        advance();
      else
        Scale = 1000000;
    }
    E->Num = IntValue(64, N * Scale);
    return E;
  }

  void skipToSemicolon() {
    while (!at(Tok::Eof) && !atPunct(";"))
      advance();
  }

  void skipBalancedParens() {
    if (!atPunct("("))
      return;
    int Depth = 0;
    do {
      if (atPunct("("))
        ++Depth;
      if (atPunct(")"))
        --Depth;
      advance();
    } while (!at(Tok::Eof) && Depth > 0);
  }

  //===------------------------------------------------------------------===//
  // Module items
  //===------------------------------------------------------------------===//

  bool parseRange(Range &R) {
    if (!atPunct("["))
      return true;
    advance();
    R.Msb = parseExpr();
    if (!R.Msb || !expectPunct(":"))
      return false;
    R.Lsb = parseExpr();
    if (!R.Lsb || !expectPunct("]"))
      return false;
    return true;
  }

  bool parseModule() {
    if (!expectIdent("module"))
      return false;
    auto M = std::make_unique<ModuleDecl>();
    M->Line = cur().Line;
    if (!parseIdent(M->Name))
      return false;

    // Parameter list: #(parameter N = 4, ...).
    if (acceptPunct("#")) {
      if (!expectPunct("("))
        return false;
      do {
        Parameter P;
        acceptIdent("parameter");
        acceptIdent("int");
        // Optional packed range on the parameter type.
        Range Ignored;
        if (!parseRange(Ignored))
          return false;
        if (!parseIdent(P.Name) || !expectPunct("="))
          return false;
        P.Default = parseExpr();
        if (!P.Default)
          return false;
        M->Params.push_back(std::move(P));
      } while (acceptPunct(","));
      if (!expectPunct(")"))
        return false;
    }

    // ANSI port list.
    if (acceptPunct("(")) {
      if (!atPunct(")")) {
        Port::Dir Dir = Port::Dir::In;
        Range Packed;
        do {
          // A direction or type keyword starts a fresh declaration whose
          // range defaults to scalar; a bare identifier continues the
          // previous declaration and inherits its range.
          bool Fresh = false;
          if (acceptIdent("input")) {
            Dir = Port::Dir::In;
            Fresh = true;
          } else if (acceptIdent("output")) {
            Dir = Port::Dir::Out;
            Fresh = true;
          }
          while (atIdent("bit") || atIdent("logic") || atIdent("wire") ||
                 atIdent("reg") || atIdent("var")) {
            advance();
            Fresh = true;
          }
          if (Fresh)
            Packed = Range();
          if (atPunct("[")) {
            Packed = Range();
            if (!parseRange(Packed))
              return false;
          }
          Port P;
          P.Direction = Dir;
          P.Line = cur().Line;
          if (!parseIdent(P.Name))
            return false;
          // Ports share the last explicit range.
          if (Packed.Msb) {
            P.Packed.Msb = cloneExpr(*Packed.Msb);
            P.Packed.Lsb = cloneExpr(*Packed.Lsb);
          }
          M->Ports.push_back(std::move(P));
        } while (acceptPunct(","));
      }
      if (!expectPunct(")"))
        return false;
    }
    if (!expectPunct(";"))
      return false;

    // Body items.
    while (!atIdent("endmodule")) {
      if (at(Tok::Eof))
        return error("unexpected end of input in module");
      if (!parseModuleItem(*M))
        return false;
    }
    advance(); // endmodule
    Out.Modules.push_back(std::move(M));
    return true;
  }

  ExprPtr cloneExpr(const Expr &E) {
    auto C = std::make_unique<Expr>();
    C->K = E.K;
    C->Line = E.Line;
    C->Num = E.Num;
    C->Sized = E.Sized;
    C->Name = E.Name;
    C->Op = E.Op;
    for (const ExprPtr &Op : E.Ops)
      C->Ops.push_back(cloneExpr(*Op));
    return C;
  }

  bool parseModuleItem(ModuleDecl &M) {
    if (atIdent("parameter") || atIdent("localparam")) {
      bool Local = cur().Text == "localparam";
      advance();
      acceptIdent("int");
      do {
        Parameter P;
        P.Local = Local;
        Range Ignored;
        if (!parseRange(Ignored))
          return false;
        if (!parseIdent(P.Name) || !expectPunct("="))
          return false;
        P.Default = parseExpr();
        if (!P.Default)
          return false;
        M.Params.push_back(std::move(P));
      } while (acceptPunct(","));
      return expectPunct(";");
    }
    if (atIdent("bit") || atIdent("logic") || atIdent("wire") ||
        atIdent("reg") || atIdent("int") || atIdent("integer")) {
      bool IsInt = atIdent("int") || atIdent("integer");
      advance();
      Range Packed;
      if (!IsInt && !parseRange(Packed))
        return false;
      do {
        Net N;
        N.Line = cur().Line;
        if (Packed.Msb) {
          N.Packed.Msb = cloneExpr(*Packed.Msb);
          N.Packed.Lsb = cloneExpr(*Packed.Lsb);
        } else if (IsInt) {
          auto Msb = std::make_unique<Expr>();
          Msb->K = Expr::Kind::Number;
          Msb->Num = IntValue(32, 31);
          auto Lsb = std::make_unique<Expr>();
          Lsb->K = Expr::Kind::Number;
          Lsb->Num = IntValue(32, 0);
          N.Packed.Msb = std::move(Msb);
          N.Packed.Lsb = std::move(Lsb);
        }
        if (!parseIdent(N.Name))
          return false;
        // One unpacked dimension: [lo:hi].
        if (acceptPunct("[")) {
          N.UnpackedLo = parseExpr();
          if (!N.UnpackedLo || !expectPunct(":"))
            return false;
          N.UnpackedHi = parseExpr();
          if (!N.UnpackedHi || !expectPunct("]"))
            return false;
        }
        M.Nets.push_back(std::move(N));
      } while (acceptPunct(","));
      return expectPunct(";");
    }
    if (acceptIdent("assign")) {
      ContAssign A;
      A.Line = cur().Line;
      A.Lhs = parsePostfix();
      if (!A.Lhs || !expectPunct("="))
        return false;
      A.Rhs = parseExpr();
      if (!A.Rhs || !expectPunct(";"))
        return false;
      M.Assigns.push_back(std::move(A));
      return true;
    }
    if (atIdent("always_comb") || atIdent("always_ff") ||
        atIdent("always_latch") || atIdent("always") ||
        atIdent("initial")) {
      ProcBlock P;
      P.Line = cur().Line;
      std::string Kw = cur().Text;
      advance();
      if (Kw == "always_comb")
        P.Kind = ProcKind::AlwaysComb;
      else if (Kw == "always_ff")
        P.Kind = ProcKind::AlwaysFF;
      else if (Kw == "always_latch")
        P.Kind = ProcKind::AlwaysLatch;
      else if (Kw == "initial")
        P.Kind = ProcKind::Initial;
      else
        P.Kind = ProcKind::Always;
      if (P.Kind == ProcKind::AlwaysFF || P.Kind == ProcKind::Always) {
        if (acceptPunct("@")) {
          if (!expectPunct("("))
            return false;
          if (acceptPunct("*")) {
            P.Kind = ProcKind::AlwaysComb;
            if (!expectPunct(")"))
              return false;
          } else {
            do {
              EdgeEvent E;
              if (acceptIdent("posedge"))
                E.Posedge = true;
              else if (acceptIdent("negedge"))
                E.Posedge = false;
              else
                return error("expected posedge/negedge");
              if (!parseIdent(E.Signal))
                return false;
              P.Edges.push_back(E);
            } while (acceptIdent("or") || acceptPunct(","));
            if (!expectPunct(")"))
              return false;
            P.Kind = ProcKind::AlwaysFF;
          }
        }
      }
      P.Body = parseStmt();
      if (!P.Body)
        return false;
      M.Procs.push_back(std::move(P));
      return true;
    }
    if (acceptIdent("function")) {
      FunctionDecl F;
      F.Line = cur().Line;
      acceptIdent("automatic");
      // Return type.
      if (atIdent("void")) {
        advance();
      } else if (atIdent("bit") || atIdent("logic")) {
        advance();
        if (!parseRange(F.RetPacked))
          return false;
      } else if (atIdent("int") || atIdent("integer")) {
        advance();
        auto Msb = std::make_unique<Expr>();
        Msb->K = Expr::Kind::Number;
        Msb->Num = IntValue(32, 31);
        auto Lsb = std::make_unique<Expr>();
        Lsb->K = Expr::Kind::Number;
        Lsb->Num = IntValue(32, 0);
        F.RetPacked.Msb = std::move(Msb);
        F.RetPacked.Lsb = std::move(Lsb);
      }
      if (!parseIdent(F.Name))
        return false;
      if (acceptPunct("(")) {
        if (!atPunct(")")) {
          do {
            Port A;
            A.Direction = Port::Dir::In;
            acceptIdent("input");
            while (atIdent("bit") || atIdent("logic") || atIdent("int"))
              advance();
            if (!parseRange(A.Packed))
              return false;
            if (!parseIdent(A.Name))
              return false;
            F.Args.push_back(std::move(A));
          } while (acceptPunct(","));
        }
        if (!expectPunct(")"))
          return false;
      }
      if (!expectPunct(";"))
        return false;
      while (!atIdent("endfunction")) {
        if (at(Tok::Eof))
          return error("unexpected end of input in function");
        StmtPtr S = parseStmt();
        if (!S)
          return false;
        F.Body.push_back(std::move(S));
      }
      advance(); // endfunction
      M.Functions.push_back(std::move(F));
      return true;
    }

    // Instantiation: mod [#(...)] name ( .a(x), .* );
    if (cur().Kind == Tok::Ident) {
      Instantiation I;
      I.Line = cur().Line;
      if (!parseIdent(I.ModuleName))
        return false;
      if (acceptPunct("#")) {
        if (!expectPunct("("))
          return false;
        do {
          if (!expectPunct("."))
            return false;
          std::string PName;
          if (!parseIdent(PName) || !expectPunct("("))
            return false;
          ExprPtr V = parseExpr();
          if (!V || !expectPunct(")"))
            return false;
          I.ParamOverrides.push_back({PName, std::move(V)});
        } while (acceptPunct(","));
        if (!expectPunct(")"))
          return false;
      }
      if (!parseIdent(I.InstName))
        return false;
      if (!expectPunct("("))
        return false;
      if (!atPunct(")")) {
        do {
          if (acceptPunct(".")) {
            if (acceptPunct("*")) {
              I.WildcardRest = true;
              continue;
            }
            std::string PName;
            if (!parseIdent(PName))
              return false;
            if (acceptPunct("(")) {
              ExprPtr V = parseExpr();
              if (!V || !expectPunct(")"))
                return false;
              I.Connections.push_back({PName, std::move(V)});
            } else {
              // ".name" shorthand.
              auto Ref = std::make_unique<Expr>();
              Ref->K = Expr::Kind::Ident;
              Ref->Name = PName;
              I.Connections.push_back({PName, std::move(Ref)});
            }
          } else {
            return error("only named port connections are supported");
          }
        } while (acceptPunct(","));
      }
      if (!expectPunct(")") || !expectPunct(";"))
        return false;
      M.Insts.push_back(std::move(I));
      return true;
    }
    return error("unexpected module item");
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  SourceFile &Out;
  std::string &Err;
};

} // namespace

bool llhd::moore::parseSource(const std::string &Src, SourceFile &Out,
                              std::string &Error) {
  std::vector<Token> Toks = lexSystemVerilog(Src, Error);
  if (!Error.empty())
    return false;
  Parser P(std::move(Toks), Out, Error);
  return P.run();
}
