//===- moore/Parser.h - SystemVerilog parser --------------------*- C++ -*-===//

#ifndef LLHD_MOORE_PARSER_H
#define LLHD_MOORE_PARSER_H

#include "moore/Ast.h"

#include <string>

namespace llhd {
namespace moore {

/// Parses SystemVerilog source into an AST. Returns false and sets
/// \p Error ("line N: message") on failure.
bool parseSource(const std::string &Src, SourceFile &Out,
                 std::string &Error);

} // namespace moore
} // namespace llhd

#endif // LLHD_MOORE_PARSER_H
