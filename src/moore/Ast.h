//===- moore/Ast.h - SystemVerilog subset AST -------------------*- C++ -*-===//
//
// Abstract syntax for the Moore frontend's SystemVerilog subset: ANSI
// modules with parameters, variables (packed + one unpacked dimension),
// continuous assigns, always_ff/always_comb/always/initial blocks,
// functions, and hierarchical instantiation with .name / .* connections.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_MOORE_AST_H
#define LLHD_MOORE_AST_H

#include "support/IntValue.h"

#include <memory>
#include <string>
#include <vector>

namespace llhd {
namespace moore {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expressions.
struct Expr {
  enum class Kind {
    Number,  ///< literal (Num; Sized if width explicit)
    Ident,   ///< Name
    Unary,   ///< Op, Ops[0]; Op in {~,!,-,&,|,^,~|,~&} (reductions incl.)
    Binary,  ///< Op, Ops[0], Ops[1]
    Ternary, ///< Ops[0] ? Ops[1] : Ops[2]
    Index,   ///< Name[Ops[0]] — identifier base only
    Slice,   ///< Name[Ops[0]:Ops[1]] — constant bounds
    Concat,  ///< {Ops...}
    Repl,    ///< {Ops[0]{Ops[1]}} — replication count Ops[0]
    Call,    ///< Name(Ops...)
    Str,     ///< "..." literal (text in Name); system-call args only
  };
  Kind K;
  unsigned Line = 0;
  IntValue Num;
  bool Sized = false;
  std::string Name;
  std::string Op;
  std::vector<ExprPtr> Ops;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statements.
struct Stmt {
  enum class Kind {
    Block,    ///< begin Stmts end
    If,       ///< Cond, Then, Else?
    For,      ///< InitVar/InitExpr; Cond; StepVar/StepExpr; Body
    While,    ///< Cond, Body
    DoWhile,  ///< Body, Cond
    Repeat,   ///< Cond(count), Body
    Forever,  ///< Body
    Case,     ///< Cond + Items
    Assign,   ///< Lhs (NonBlocking?), Rhs, Delay?
    VarDecl,  ///< local variable: Name, Width, Init?
    Delay,    ///< "#t;" — Cond holds the delay expression
    ExprStmt, ///< call (assert, $finish, user function)
    Break,
  };
  struct CaseItem {
    std::vector<ExprPtr> Labels; ///< empty = default
    StmtPtr Body;
  };
  Kind K;
  unsigned Line = 0;
  ExprPtr Cond;
  ExprPtr Lhs, Rhs, Delay;
  bool NonBlocking = false;
  std::string Name;   ///< For/VarDecl variable.
  ExprPtr Init, Step; ///< For: init value and step assignment RHS.
  std::string StepVar;
  std::vector<StmtPtr> Stmts;
  StmtPtr Then, Else, Body;
  std::vector<CaseItem> Items;
  // VarDecl payload.
  ExprPtr WidthMsb, WidthLsb;
  ExprPtr UnpackedLo, UnpackedHi; ///< Optional unpacked dimension.
};

/// A packed range [Msb:Lsb] (as constant expressions) or scalar.
struct Range {
  ExprPtr Msb, Lsb;
  bool isScalar() const { return !Msb; }
};

/// A port.
struct Port {
  enum class Dir { In, Out };
  Dir Direction;
  std::string Name;
  Range Packed;
  unsigned Line = 0;
};

/// A module-level variable / net.
struct Net {
  std::string Name;
  Range Packed;
  ExprPtr UnpackedLo, UnpackedHi; ///< one optional unpacked dimension
  unsigned Line = 0;
};

/// Procedural block kinds.
enum class ProcKind { AlwaysComb, AlwaysFF, AlwaysLatch, Always, Initial };

/// One event in an always_ff sensitivity list.
struct EdgeEvent {
  bool Posedge;
  std::string Signal;
};

struct ProcBlock {
  ProcKind Kind;
  std::vector<EdgeEvent> Edges; ///< always_ff only.
  StmtPtr Body;
  unsigned Line = 0;
};

/// A continuous assignment.
struct ContAssign {
  ExprPtr Lhs, Rhs;
  unsigned Line = 0;
};

struct FunctionDecl {
  std::string Name;
  Range RetPacked;
  std::vector<Port> Args; ///< inputs only.
  std::vector<StmtPtr> Body;
  unsigned Line = 0;
};

struct Instantiation {
  std::string ModuleName;
  std::string InstName;
  std::vector<std::pair<std::string, ExprPtr>> ParamOverrides;
  std::vector<std::pair<std::string, ExprPtr>> Connections;
  bool WildcardRest = false; ///< ".*"
  unsigned Line = 0;
};

struct Parameter {
  std::string Name;
  ExprPtr Default;
  bool Local = false;
  unsigned Line = 0;
};

struct ModuleDecl {
  std::string Name;
  std::vector<Parameter> Params;
  std::vector<Port> Ports;
  std::vector<Net> Nets;
  std::vector<ContAssign> Assigns;
  std::vector<ProcBlock> Procs;
  std::vector<FunctionDecl> Functions;
  std::vector<Instantiation> Insts;
  unsigned Line = 0;
};

/// A parsed source file.
struct SourceFile {
  std::vector<std::unique_ptr<ModuleDecl>> Modules;
};

} // namespace moore
} // namespace llhd

#endif // LLHD_MOORE_AST_H
