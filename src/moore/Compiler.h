//===- moore/Compiler.h - SystemVerilog to LLHD -----------------*- C++ -*-===//
//
// The Moore frontend (§3): elaborates a SystemVerilog-subset AST
// (parameters resolved, loops unrolled where constant) and lowers it to
// Behavioural LLHD. Modules map to entities, procedural blocks to
// processes, and functions to LLHD functions, mirroring the Figure 2/3
// correspondence.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_MOORE_COMPILER_H
#define LLHD_MOORE_COMPILER_H

#include "ir/Module.h"

#include <string>

namespace llhd {
namespace moore {

struct CompileResult {
  bool Ok = true;
  std::string Error;
  /// The LLHD unit name of the elaborated top module.
  std::string TopUnit;

  explicit operator bool() const { return Ok; }
};

/// Compiles \p Src, elaborating \p TopModule (with default parameters)
/// and everything it instantiates into \p M.
CompileResult compileSystemVerilog(const std::string &Src,
                                   const std::string &TopModule, Module &M);

/// Parses \p Src and returns the unique top module: the one no other
/// module instantiates. Returns "" and sets \p Error when the source is
/// malformed, has no module, or has several top candidates.
std::string detectTopModule(const std::string &Src, std::string &Error);

} // namespace moore
} // namespace llhd

#endif // LLHD_MOORE_COMPILER_H
