//===- moore/Lexer.h - SystemVerilog lexer ----------------------*- C++ -*-===//
//
// Token stream for the Moore frontend's SystemVerilog subset (§3).
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_MOORE_LEXER_H
#define LLHD_MOORE_LEXER_H

#include "support/IntValue.h"

#include <string>
#include <vector>

namespace llhd {
namespace moore {

enum class Tok : uint8_t {
  Eof,
  Ident,   ///< identifiers and keywords
  Number,  ///< numeric literal (possibly sized/based)
  String,  ///< "..."
  Punct,   ///< operator / punctuation (text in Token::Text)
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;
  unsigned Line = 0;
  // Numeric payload.
  IntValue Num;
  bool Sized = false; ///< Width was explicit (e.g. 8'hff).
};

/// Lexes the whole input up front (including skipping // and /* */
/// comments); parse errors carry line numbers.
std::vector<Token> lexSystemVerilog(const std::string &Src,
                                    std::string &Error);

} // namespace moore
} // namespace llhd

#endif // LLHD_MOORE_LEXER_H
