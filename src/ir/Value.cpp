//===- ir/Value.cpp - SSA values, uses and users --------------------------===//

#include "ir/Value.h"

using namespace llhd;

void Use::set(Value *NewVal) {
  if (Val == NewVal)
    return;
  if (Val)
    Val->removeUse(this);
  Val = NewVal;
  if (Val)
    Val->addUse(this);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replaceAllUsesWith on itself");
  while (!UseList.empty())
    UseList.back()->set(New);
}

void User::appendOperand(Value *V) {
  auto U = std::make_unique<Use>();
  U->init(this, Operands.size());
  Operands.push_back(std::move(U));
  Operands.back()->set(V);
}

void User::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->clear();
  Operands.erase(Operands.begin() + I);
  for (unsigned J = I, E = Operands.size(); J != E; ++J)
    Operands[J]->init(this, J);
}

void User::dropAllOperands() {
  for (auto &U : Operands)
    U->clear();
  Operands.clear();
}
