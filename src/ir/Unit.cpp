//===- ir/Unit.cpp - Functions, processes and entities ---------------------===//

#include "ir/Unit.h"

#include <algorithm>

using namespace llhd;

Unit::~Unit() {
  // Sever all def-use edges first so teardown order does not matter.
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : BB->insts())
      I->dropAllOperands();
  for (BasicBlock *BB : Blocks) {
    BB->replaceAllUsesWith(nullptr);
    delete BB;
  }
  Blocks.clear();
  for (Argument *A : Inputs) {
    A->replaceAllUsesWith(nullptr);
    delete A;
  }
  for (Argument *A : Outputs) {
    A->replaceAllUsesWith(nullptr);
    delete A;
  }
}

Argument *Unit::addInput(Type *Ty, std::string Name) {
  assert(isFunction() ||
         Ty->isSignal() && "process/entity inputs must be signals");
  auto *A = new Argument(Ty, std::move(Name), Argument::Dir::In,
                         Inputs.size(), this);
  Inputs.push_back(A);
  return A;
}

Argument *Unit::addOutput(Type *Ty, std::string Name) {
  assert(!isFunction() && "functions have no outputs");
  assert(Ty->isSignal() && "process/entity outputs must be signals");
  auto *A = new Argument(Ty, std::move(Name), Argument::Dir::Out,
                         Outputs.size(), this);
  Outputs.push_back(A);
  return A;
}

Argument *Unit::argumentByName(const std::string &N) const {
  for (Argument *A : Inputs)
    if (A->name() == N)
      return A;
  for (Argument *A : Outputs)
    if (A->name() == N)
      return A;
  return nullptr;
}

BasicBlock *Unit::entityBlock() {
  assert(isEntity() && "entityBlock() on a control-flow unit");
  if (Blocks.empty())
    createBlock("body");
  return Blocks.front();
}

BasicBlock *Unit::createBlock(std::string Name) {
  assert(!(isEntity() && !Blocks.empty()) &&
         "entities have exactly one block");
  auto *BB = new BasicBlock(Ctx, std::move(Name));
  BB->Parent = this;
  Blocks.push_back(BB);
  return BB;
}

BasicBlock *Unit::createBlockAfter(std::string Name, BasicBlock *After) {
  auto *BB = new BasicBlock(Ctx, std::move(Name));
  BB->Parent = this;
  auto It = std::find(Blocks.begin(), Blocks.end(), After);
  assert(It != Blocks.end() && "anchor block not in this unit");
  Blocks.insert(It + 1, BB);
  return BB;
}

void Unit::eraseBlock(BasicBlock *BB) {
  assert(BB->parent() == this && "block not in this unit");
  assert(!BB->hasUses() && "erasing a block that still has uses");
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not found");
  Blocks.erase(It);
  delete BB;
}

void Unit::moveBlockAfter(BasicBlock *BB, BasicBlock *After) {
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not in this unit");
  Blocks.erase(It);
  auto AfterIt = std::find(Blocks.begin(), Blocks.end(), After);
  assert(AfterIt != Blocks.end() && "anchor block not in this unit");
  Blocks.insert(AfterIt + 1, BB);
}

unsigned Unit::numInsts() const {
  unsigned N = 0;
  for (BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

uint32_t Unit::numberValues() {
  uint32_t N = 0;
  for (Argument *A : Inputs)
    A->setValueNumber(N++);
  for (Argument *A : Outputs)
    A->setValueNumber(N++);
  uint32_t BN = 0;
  for (BasicBlock *BB : Blocks) {
    BB->setValueNumber(BN++);
    for (Instruction *I : BB->insts())
      I->setValueNumber(N++);
  }
  return N;
}
