//===- ir/Context.h - Type uniquing context ---------------------*- C++ -*-===//
//
// Owns and uniques all Type objects. Every Module is created against a
// Context; types from different contexts must not be mixed.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_CONTEXT_H
#define LLHD_IR_CONTEXT_H

#include "ir/Type.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace llhd {

/// Uniquing context for LLHD types. The factory methods are internally
/// locked: units that share a Context may be transformed on different
/// threads (the parallel lowering scheduler), and creating a type is the
/// only Context mutation those transforms perform.
class Context {
public:
  Context();
  ~Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  VoidType *voidType() { return Void.get(); }
  TimeType *timeType() { return TimeTy.get(); }
  IntType *intType(unsigned Width);
  /// The boolean type i1.
  IntType *boolType() { return intType(1); }
  EnumType *enumType(unsigned NumValues);
  LogicType *logicType(unsigned Width);
  PointerType *pointerType(Type *Pointee);
  SignalType *signalType(Type *Inner);
  ArrayType *arrayType(unsigned Length, Type *Element);
  StructType *structType(std::vector<Type *> Fields);

  /// Approximate heap footprint of all uniqued types, for Table 4.
  size_t memoryFootprint() const;

private:
  mutable std::mutex Mutex;
  std::unique_ptr<VoidType> Void;
  std::unique_ptr<TimeType> TimeTy;
  std::map<unsigned, std::unique_ptr<IntType>> IntTypes;
  std::map<unsigned, std::unique_ptr<EnumType>> EnumTypes;
  std::map<unsigned, std::unique_ptr<LogicType>> LogicTypes;
  std::map<Type *, std::unique_ptr<PointerType>> PointerTypes;
  std::map<Type *, std::unique_ptr<SignalType>> SignalTypes;
  std::map<std::pair<unsigned, Type *>, std::unique_ptr<ArrayType>> ArrayTypes;
  std::map<std::vector<Type *>, std::unique_ptr<StructType>> StructTypes;
};

} // namespace llhd

#endif // LLHD_IR_CONTEXT_H
