//===- ir/Instruction.cpp - LLHD instructions ------------------------------===//

#include "ir/Instruction.h"
#include "ir/BasicBlock.h"
#include "ir/Unit.h"

using namespace llhd;

const char *llhd::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:        return "const";
  case Opcode::ArrayCreate:  return "array";
  case Opcode::StructCreate: return "struct";
  case Opcode::Neg:          return "neg";
  case Opcode::Add:          return "add";
  case Opcode::Sub:          return "sub";
  case Opcode::Mul:          return "mul";
  case Opcode::Udiv:         return "div";
  case Opcode::Sdiv:         return "sdiv";
  case Opcode::Umod:         return "mod";
  case Opcode::Smod:         return "smod";
  case Opcode::Urem:         return "rem";
  case Opcode::Srem:         return "srem";
  case Opcode::Not:          return "not";
  case Opcode::And:          return "and";
  case Opcode::Or:           return "or";
  case Opcode::Xor:          return "xor";
  case Opcode::Shl:          return "shl";
  case Opcode::Shr:          return "shr";
  case Opcode::Ashr:         return "ashr";
  case Opcode::Eq:           return "eq";
  case Opcode::Neq:          return "neq";
  case Opcode::Ult:          return "ult";
  case Opcode::Ugt:          return "ugt";
  case Opcode::Ule:          return "ule";
  case Opcode::Uge:          return "uge";
  case Opcode::Slt:          return "slt";
  case Opcode::Sgt:          return "sgt";
  case Opcode::Sle:          return "sle";
  case Opcode::Sge:          return "sge";
  case Opcode::Mux:          return "mux";
  case Opcode::Zext:         return "zext";
  case Opcode::Sext:         return "sext";
  case Opcode::Trunc:        return "trunc";
  case Opcode::Insf:         return "insf";
  case Opcode::Extf:         return "extf";
  case Opcode::Inss:         return "inss";
  case Opcode::Exts:         return "exts";
  case Opcode::Var:          return "var";
  case Opcode::Ld:           return "ld";
  case Opcode::St:           return "st";
  case Opcode::Alloc:        return "alloc";
  case Opcode::Free:         return "free";
  case Opcode::Sig:          return "sig";
  case Opcode::Prb:          return "prb";
  case Opcode::Drv:          return "drv";
  case Opcode::Con:          return "con";
  case Opcode::Del:          return "del";
  case Opcode::Reg:          return "reg";
  case Opcode::InstOp:       return "inst";
  case Opcode::Call:         return "call";
  case Opcode::Ret:          return "ret";
  case Opcode::Br:           return "br";
  case Opcode::Halt:         return "halt";
  case Opcode::Wait:         return "wait";
  case Opcode::Phi:          return "phi";
  }
  assert(false && "unknown opcode");
  return "";
}

const char *llhd::regModeName(RegMode M) {
  switch (M) {
  case RegMode::Low:  return "low";
  case RegMode::High: return "high";
  case RegMode::Rise: return "rise";
  case RegMode::Fall: return "fall";
  case RegMode::Both: return "both";
  }
  assert(false && "unknown reg mode");
  return "";
}

Unit *Instruction::parentUnit() const {
  return Parent ? Parent->parent() : nullptr;
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction has no parent");
  Parent->remove(this);
}

void Instruction::eraseFromParent() {
  assert(!hasUses() && "erasing an instruction that still has uses");
  if (Parent)
    Parent->remove(this);
  delete this;
}

bool Instruction::isPureDataFlow() const {
  switch (Op) {
  case Opcode::Const:
  case Opcode::ArrayCreate:
  case Opcode::StructCreate:
  case Opcode::Mux:
    return true;
  default:
    return isBinaryArith() || isBinaryBitwise() || isShift() || isCompare() ||
           isCast() || Op == Opcode::Neg || Op == Opcode::Not ||
           Op == Opcode::Insf ||
           // extf/exts are pure only on values; on signals/pointers they
           // produce an alias, which is still side-effect free and
           // movable, so they count as pure here.
           Op == Opcode::Extf || Op == Opcode::Exts;
  }
}

bool Instruction::hasSideEffects() const {
  switch (Op) {
  case Opcode::St:
  case Opcode::Drv:
  case Opcode::Con:
  case Opcode::Del:
  case Opcode::Reg:
  case Opcode::InstOp:
  case Opcode::Call: // Conservative: callee may drive or assert.
  case Opcode::Free:
    return true;
  default:
    return isTerminator();
  }
}

BasicBlock *Instruction::brDest(unsigned I) const {
  assert(Op == Opcode::Br && "not a branch");
  if (numOperands() == 1) {
    assert(I == 0 && "unconditional branch has one destination");
    return cast<BasicBlock>(operand(0));
  }
  assert(I < 2 && "branch destination out of range");
  return cast<BasicBlock>(operand(1 + I));
}

BasicBlock *Instruction::waitDest() const {
  assert(Op == Opcode::Wait && "not a wait");
  return cast<BasicBlock>(operand(0));
}

BasicBlock *Instruction::incomingBlock(unsigned I) const {
  assert(Op == Opcode::Phi && "not a phi");
  return cast<BasicBlock>(operand(2 * I + 1));
}

void Instruction::addIncoming(Value *V, BasicBlock *BB) {
  assert(Op == Opcode::Phi && "not a phi");
  appendOperand(V);
  appendOperand(BB);
}

void Instruction::removeIncoming(unsigned I) {
  assert(Op == Opcode::Phi && "not a phi");
  assert(2 * I + 1 < numOperands() && "incoming index out of range");
  removeOperand(2 * I + 1);
  removeOperand(2 * I);
}
