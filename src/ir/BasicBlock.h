//===- ir/BasicBlock.h - Control flow blocks --------------------*- C++ -*-===//
//
// Basic blocks for control-flow units. Every block of a function or
// process ends in exactly one terminator. Entities are modelled as a
// single terminator-free block (§2.4.3).
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_BASICBLOCK_H
#define LLHD_IR_BASICBLOCK_H

#include "ir/Context.h"
#include "ir/Instruction.h"

#include <vector>

namespace llhd {

class Unit;

/// A sequence of instructions with a single entry point.
class BasicBlock : public Value {
public:
  BasicBlock(Context &Ctx, std::string Name)
      : Value(Kind::BasicBlock, Ctx.voidType(), std::move(Name)) {}
  ~BasicBlock();

  Unit *parent() const { return Parent; }

  const std::vector<Instruction *> &insts() const { return Insts; }
  bool empty() const { return Insts.empty(); }
  unsigned size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }

  /// The terminator, or null if the block has none (entities, or blocks
  /// under construction).
  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// Appends \p I at the end; takes ownership.
  void append(Instruction *I);
  /// Inserts \p I before \p Before (which must be in this block).
  void insertBefore(Instruction *I, Instruction *Before);
  /// Inserts \p I at position \p Idx.
  void insertAt(unsigned Idx, Instruction *I);
  /// Detaches \p I without deleting it.
  void remove(Instruction *I);
  /// Index of \p I within this block; asserts if absent.
  unsigned indexOf(const Instruction *I) const;

  /// Successor blocks implied by the terminator (empty for ret/halt).
  std::vector<BasicBlock *> successors() const;
  /// Predecessor blocks, computed by scanning users of this block.
  std::vector<BasicBlock *> predecessors() const;

  static bool classof(const Value *V) {
    return V->valueKind() == Kind::BasicBlock;
  }

private:
  friend class Unit;
  Unit *Parent = nullptr;
  std::vector<Instruction *> Insts;
};

} // namespace llhd

#endif // LLHD_IR_BASICBLOCK_H
