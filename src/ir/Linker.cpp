//===- ir/Linker.cpp - Module linking --------------------------------------===//
//
// Implements Module::linkFrom (§2.3): combines two modules, resolving
// references in one against definitions in the other.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <map>

using namespace llhd;

/// Signature compatibility between a declaration and a definition.
static bool signaturesMatch(const Unit &A, const Unit &B) {
  if (A.kind() != B.kind())
    return false;
  if (A.inputs().size() != B.inputs().size() ||
      A.outputs().size() != B.outputs().size())
    return false;
  for (unsigned I = 0; I != A.inputs().size(); ++I)
    if (A.input(I)->type() != B.input(I)->type())
      return false;
  for (unsigned I = 0; I != A.outputs().size(); ++I)
    if (A.output(I)->type() != B.output(I)->type())
      return false;
  return A.returnType() == B.returnType();
}

bool Module::linkFrom(Module &Src, std::string &Error) {
  assert(&Ctx == &Src.Ctx && "linked modules must share one context");

  // Unit replacement map for callee pointer rewriting. Superseded units
  // are parked in Doomed and destroyed only after all callee pointers
  // have been rewritten.
  std::map<Unit *, Unit *> Replace;
  std::vector<std::unique_ptr<Unit>> Doomed;
  std::vector<std::unique_ptr<Unit>> Incoming;
  Incoming.swap(Src.Units);
  Src.SymbolTable.clear();

  auto parkExisting = [&](Unit *U) {
    for (auto It = Units.begin(); It != Units.end(); ++It) {
      if (It->get() == U) {
        Doomed.push_back(std::move(*It));
        Units.erase(It);
        return;
      }
    }
    assert(false && "existing unit not found");
  };

  for (auto &UP : Incoming) {
    Unit *In = UP.get();
    Unit *Existing = unitByName(In->name());
    if (!Existing) {
      In->Parent = this;
      SymbolTable[In->name()] = In;
      Units.push_back(std::move(UP));
      continue;
    }
    if (!signaturesMatch(*Existing, *In)) {
      Error = "@" + In->name() + ": signature mismatch during link";
      return false;
    }
    if (!Existing->isDeclaration() && !In->isDeclaration()) {
      Error = "@" + In->name() + ": duplicate definition during link";
      return false;
    }
    if (Existing->isDeclaration() && !In->isDeclaration()) {
      // The incoming definition replaces the existing declaration.
      Replace[Existing] = In;
      parkExisting(Existing);
      SymbolTable.erase(In->name());
      In->Parent = this;
      SymbolTable[In->name()] = In;
      Units.push_back(std::move(UP));
    } else {
      // Existing definition (or declaration) wins; drop the incoming unit.
      Replace[In] = Existing;
      Doomed.push_back(std::move(UP));
    }
  }

  // Rewrite callee pointers across the whole module (including bodies of
  // doomed units, whose instructions still hold uses until destruction).
  auto rewrite = [&](Unit &U) {
    for (BasicBlock *BB : U.blocks())
      for (Instruction *I : BB->insts()) {
        auto It = Replace.find(I->callee());
        if (It != Replace.end())
          I->setCallee(It->second);
      }
  };
  for (auto &UP : Units)
    rewrite(*UP);

  Doomed.clear();
  return true;
}
