//===- ir/Module.cpp - LLHD modules ----------------------------------------===//

#include "ir/Module.h"

#include <algorithm>

using namespace llhd;

Unit *Module::addUnit(Unit::Kind K, const std::string &Name,
                      bool Declaration) {
  assert(!unitByName(Name) && "duplicate global name");
  auto U = std::make_unique<Unit>(Ctx, K, Name);
  U->Parent = this;
  U->setDeclaration(Declaration);
  Unit *Ptr = U.get();
  Units.push_back(std::move(U));
  SymbolTable[Name] = Ptr;
  return Ptr;
}

Unit *Module::createFunction(const std::string &Name) {
  return addUnit(Unit::Kind::Function, Name, false);
}

Unit *Module::createProcess(const std::string &Name) {
  return addUnit(Unit::Kind::Process, Name, false);
}

Unit *Module::createEntity(const std::string &Name) {
  return addUnit(Unit::Kind::Entity, Name, false);
}

Unit *Module::declareUnit(Unit::Kind K, const std::string &Name) {
  return addUnit(K, Name, true);
}

Unit *Module::intrinsic(const std::string &Name) {
  assert(Name.rfind("llhd.", 0) == 0 && "intrinsics must be llhd.*");
  if (Unit *U = unitByName(Name))
    return U;
  return declareUnit(Unit::Kind::Function, Name);
}

Unit *Module::unitByName(const std::string &Name) const {
  auto It = SymbolTable.find(Name);
  return It == SymbolTable.end() ? nullptr : It->second;
}

void Module::eraseUnit(Unit *U) {
  SymbolTable.erase(U->name());
  auto It = std::find_if(Units.begin(), Units.end(),
                         [&](const auto &P) { return P.get() == U; });
  assert(It != Units.end() && "unit not in this module");
  Units.erase(It);
}

void Module::moveUnitToEnd(Unit *U) {
  auto It = std::find_if(Units.begin(), Units.end(),
                         [&](const auto &P) { return P.get() == U; });
  assert(It != Units.end() && "unit not in this module");
  auto Holder = std::move(*It);
  Units.erase(It);
  Units.push_back(std::move(Holder));
}

void Module::renameUnit(Unit *U, const std::string &NewName) {
  assert(!unitByName(NewName) && "rename collides with existing unit");
  SymbolTable.erase(U->name());
  U->setName(NewName);
  SymbolTable[NewName] = U;
}

size_t Module::memoryFootprint() const {
  size_t N = sizeof(Module) + Ctx.memoryFootprint();
  for (const auto &UP : Units) {
    const Unit &U = *UP;
    N += sizeof(Unit) + U.name().size();
    for (const Argument *A : U.inputs())
      N += sizeof(Argument) + A->name().size() +
           A->uses().size() * sizeof(Use *);
    for (const Argument *A : U.outputs())
      N += sizeof(Argument) + A->name().size() +
           A->uses().size() * sizeof(Use *);
    for (const BasicBlock *BB : U.blocks()) {
      N += sizeof(BasicBlock) + BB->name().size() +
           BB->insts().size() * sizeof(Instruction *);
      for (const Instruction *I : BB->insts()) {
        N += sizeof(Instruction) + I->name().size();
        N += I->numOperands() * (sizeof(Use) + sizeof(Use *) * 2);
        N += I->regTriggers().size() * sizeof(RegTrigger);
        if (I->opcode() == Opcode::Const) {
          N += I->intValue().numWords() * 8;
          N += I->logicValue().width();
        }
      }
    }
  }
  return N;
}
