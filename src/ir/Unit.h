//===- ir/Unit.h - Functions, processes and entities ------------*- C++ -*-===//
//
// The three LLHD design units (§2.4, Table 1):
//   Function — control flow, immediate execution, user-defined mapping.
//   Process  — control flow, timed, behavioural circuit description.
//   Entity   — data flow, timed, structural circuit description.
// Units can also be declarations (extern), resolved by the Linker.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_UNIT_H
#define LLHD_IR_UNIT_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace llhd {

class Module;

/// One LLHD design unit.
class Unit {
public:
  enum class Kind { Function, Process, Entity };

  Unit(Context &Ctx, Kind K, std::string Name)
      : Ctx(Ctx), TheKind(K), Name(std::move(Name)),
        ReturnType(Ctx.voidType()) {}
  ~Unit();
  Unit(const Unit &) = delete;
  Unit &operator=(const Unit &) = delete;

  Context &context() const { return Ctx; }
  Kind kind() const { return TheKind; }
  /// Re-kinds a body-less declaration. Used by the parser when a unit that
  /// was auto-declared from an `inst` turns out to be a process.
  void setKind(Kind K) {
    assert(!hasBody() && "cannot re-kind a defined unit");
    TheKind = K;
  }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  Module *parent() const { return Parent; }

  bool isFunction() const { return TheKind == Kind::Function; }
  bool isProcess() const { return TheKind == Kind::Process; }
  bool isEntity() const { return TheKind == Kind::Entity; }
  /// Control-flow units consist of basic blocks with terminators;
  /// entities are a single data-flow block (§2.4).
  bool isControlFlow() const { return !isEntity(); }
  /// Timed units persist across simulation time (§2.4).
  bool isTimed() const { return !isFunction(); }

  /// A declaration has a signature but no body.
  bool isDeclaration() const { return Declaration; }
  void setDeclaration(bool D) { Declaration = D; }
  /// True for the built-in `llhd.*` intrinsics (§2.5.9).
  bool isIntrinsic() const { return Name.rfind("llhd.", 0) == 0; }

  //===------------------------------------------------------------------===//
  // Signature.
  //===------------------------------------------------------------------===//

  /// Adds an input argument (function parameter or process/entity input).
  Argument *addInput(Type *Ty, std::string Name);
  /// Adds an output argument (process/entity only; must be signal type).
  Argument *addOutput(Type *Ty, std::string Name);

  const std::vector<Argument *> &inputs() const { return Inputs; }
  const std::vector<Argument *> &outputs() const { return Outputs; }
  Argument *input(unsigned I) const { return Inputs[I]; }
  Argument *output(unsigned I) const { return Outputs[I]; }

  /// Function return type; void for processes/entities.
  Type *returnType() const { return ReturnType; }
  void setReturnType(Type *Ty) { ReturnType = Ty; }

  /// Looks up an argument (input or output) by name; null if absent.
  Argument *argumentByName(const std::string &N) const;

  //===------------------------------------------------------------------===//
  // Body.
  //===------------------------------------------------------------------===//

  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  bool hasBody() const { return !Blocks.empty(); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "unit has no body");
    return Blocks.front();
  }
  /// For entities: the single data-flow block, creating it on demand.
  BasicBlock *entityBlock();

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string Name);
  /// Creates a block inserted after \p After.
  BasicBlock *createBlockAfter(std::string Name, BasicBlock *After);
  /// Detaches and deletes \p BB (which must be use-free).
  void eraseBlock(BasicBlock *BB);
  /// Moves \p BB to just after \p After in block order.
  void moveBlockAfter(BasicBlock *BB, BasicBlock *After);

  /// Total instruction count across all blocks.
  unsigned numInsts() const;

  /// Assigns every argument and instruction of this unit a dense value
  /// number 0..N-1 (in signature/program order) and every block a dense
  /// block number 0..NB-1, then returns N. Engines call this once when
  /// building their per-unit structures; the numbering is deterministic,
  /// so repeated calls (e.g. by two engines sharing a module) agree.
  uint32_t numberValues();

private:
  friend class Module;
  Context &Ctx;
  Kind TheKind;
  std::string Name;
  Module *Parent = nullptr;
  bool Declaration = false;
  std::vector<Argument *> Inputs;
  std::vector<Argument *> Outputs;
  Type *ReturnType;
  std::vector<BasicBlock *> Blocks;
};

} // namespace llhd

#endif // LLHD_IR_UNIT_H
