//===- ir/Value.h - SSA values, uses and users ------------------*- C++ -*-===//
//
// The SSA value graph. A Value is anything that can be referenced by name
// in the IR: unit arguments, basic blocks and instruction results. Users
// (instructions) hold Use objects that register themselves in the used
// Value's use list, enabling def-use traversal and replaceAllUsesWith.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_VALUE_H
#define LLHD_IR_VALUE_H

#include "ir/Type.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace llhd {

class User;
class Value;
class Unit;

/// One operand slot of a User; registers itself with the used Value.
class Use {
public:
  Use() = default;
  Use(const Use &) = delete;
  Use &operator=(const Use &) = delete;
  Use(Use &&) = delete;
  ~Use() { clear(); }

  Value *get() const { return Val; }
  User *user() const { return Usr; }
  unsigned operandIndex() const { return Index; }

  /// Points this use at \p NewVal (possibly null), updating use lists.
  void set(Value *NewVal);
  void clear() { set(nullptr); }

private:
  friend class User;
  friend class Value;
  void init(User *U, unsigned I) {
    Usr = U;
    Index = I;
  }

  Value *Val = nullptr;
  User *Usr = nullptr;
  unsigned Index = 0;
  /// Position inside the used Value's use list, maintained by
  /// Value::addUse/removeUse so unregistering is O(1).
  unsigned ListIndex = 0;
};

/// Base class of everything that can be used as an operand.
class Value {
public:
  enum class Kind {
    Argument,
    BasicBlock,
    Instruction,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  Kind valueKind() const { return TheKind; }
  Type *type() const { return Ty; }
  void setType(Type *T) { Ty = T; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  const std::vector<Use *> &uses() const { return UseList; }
  bool hasUses() const { return !UseList.empty(); }
  unsigned numUses() const { return UseList.size(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Dense per-unit numbering used by the simulation engines to index
  /// frame slots (and block tables) as flat arrays instead of per-value
  /// maps. Assigned by Unit::numberValues(); only meaningful after it ran
  /// and until the unit is mutated again.
  uint32_t valueNumber() const { return ValNo; }
  void setValueNumber(uint32_t N) { ValNo = N; }

protected:
  Value(Kind K, Type *Ty, std::string Name)
      : TheKind(K), Ty(Ty), Name(std::move(Name)) {}
  ~Value() {
    assert(UseList.empty() && "deleting a value that still has uses");
  }

private:
  friend class Use;
  void addUse(Use *U) {
    U->ListIndex = UseList.size();
    UseList.push_back(U);
  }
  /// Swap-with-back removal: use-list order is not semantic, so
  /// unregistering a use is O(1) instead of a linear scan — RAUW-heavy
  /// passes tear down thousands of uses per unit.
  void removeUse(Use *U) {
    assert(U->ListIndex < UseList.size() && UseList[U->ListIndex] == U &&
           "use not registered");
    Use *Back = UseList.back();
    UseList[U->ListIndex] = Back;
    Back->ListIndex = U->ListIndex;
    UseList.pop_back();
  }

  Kind TheKind;
  Type *Ty;
  std::string Name;
  uint32_t ValNo = 0;
  std::vector<Use *> UseList;
};

/// A Value that holds operands (instructions).
class User : public Value {
public:
  unsigned numOperands() const { return Operands.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I]->get();
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I]->set(V);
  }

  /// Appends a new trailing operand slot holding \p V.
  void appendOperand(Value *V);
  /// Removes the operand slot at \p I, shifting later operands down.
  void removeOperand(unsigned I);
  /// Clears all operand slots (used before deletion).
  void dropAllOperands();

  static bool classof(const Value *V) {
    return V->valueKind() == Kind::Instruction;
  }

protected:
  User(Kind K, Type *Ty, std::string Name) : Value(K, Ty, std::move(Name)) {}
  ~User() { dropAllOperands(); }

  /// Use slots; heap-allocated so addresses are stable across growth.
  std::vector<std::unique_ptr<Use>> Operands;
};

/// An input or output argument of a unit.
class Argument : public Value {
public:
  enum class Dir { In, Out };

  Argument(Type *Ty, std::string Name, Dir D, unsigned Index, Unit *Parent)
      : Value(Kind::Argument, Ty, std::move(Name)), Direction(D), Index(Index),
        Parent(Parent) {}

  Dir direction() const { return Direction; }
  bool isInput() const { return Direction == Dir::In; }
  unsigned index() const { return Index; }
  Unit *parent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->valueKind() == Kind::Argument;
  }

private:
  Dir Direction;
  unsigned Index;
  Unit *Parent;
};

} // namespace llhd

#endif // LLHD_IR_VALUE_H
