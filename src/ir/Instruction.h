//===- ir/Instruction.h - LLHD instructions ---------------------*- C++ -*-===//
//
// The LLHD instruction set (§2.5 of the paper): data flow, bit-precise
// insert/extract, memory, control flow, time flow, signals, registers and
// hierarchy. One Instruction class carries an opcode plus per-opcode
// payload; operands are Use slots registered in the used values.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_INSTRUCTION_H
#define LLHD_IR_INSTRUCTION_H

#include "ir/Value.h"
#include "support/IntValue.h"
#include "support/LogicVec.h"
#include "support/Time.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llhd {

class BasicBlock;
class Unit;

/// Every LLHD operation.
enum class Opcode : uint8_t {
  // Constants and aggregates.
  Const,        ///< const <ty> <literal>
  ArrayCreate,  ///< [ty %a, %b, ...]
  StructCreate, ///< {ty1 %a, ty2 %b, ...}
  // Arithmetic (§2.5.4). div/mod/rem are unsigned; s* are signed.
  Neg, Add, Sub, Mul, Udiv, Sdiv, Umod, Smod, Urem, Srem,
  // Bitwise.
  Not, And, Or, Xor,
  // Shifts.
  Shl, Shr, Ashr,
  // Comparisons (result i1).
  Eq, Neq, Ult, Ugt, Ule, Uge, Slt, Sgt, Sle, Sge,
  // Selection.
  Mux, ///< mux <ty> %array, %selector
  // Width changes (explicit in LLHD; see §6.3).
  Zext, Sext, Trunc,
  // Bit-precise insertion/extraction (§2.5.5/§2.5.6). extf/exts also
  // operate on signals and pointers, yielding sub-signals/sub-pointers.
  Insf, ///< insf <ty> %agg, %value, <index>
  Extf, ///< extf <ty> %agg, <index>
  Inss, ///< inss <ty> %value, %slice, <offset>
  Exts, ///< exts <ty> %value, <offset>
  // Memory (§2.5.8).
  Var, Ld, St, Alloc, Free,
  // Signals (§2.5.2).
  Sig, ///< sig <ty> %init
  Prb, ///< prb <ty>$ %signal
  Drv, ///< drv <ty>$ %signal, %value after %delay [if %cond]
  Con, ///< con <ty>$ %a, %b
  Del, ///< del <ty>$ %target, %source after %delay
  // Registers (§2.5.3).
  Reg, ///< reg <ty>$ %signal, %v mode %trigger [after %d] [if %c], ...
  // Hierarchy (§2.5.1).
  InstOp, ///< inst @unit (%in...) -> (%out...)
  // Control flow (§2.5.7).
  Call, Ret, Br, Halt,
  // Time flow.
  Wait, ///< wait %dest [for %time], %observed...
  // SSA merge.
  Phi,
};

/// Assembly mnemonic of an opcode (e.g. "add").
const char *opcodeName(Opcode Op);

/// Edge/level sensitivity of one `reg` trigger (§2.5.3).
enum class RegMode : uint8_t { Low, High, Rise, Fall, Both };

const char *regModeName(RegMode M);

/// One trigger entry of a `reg` instruction; indices refer to the
/// instruction's operand list (-1 = absent).
struct RegTrigger {
  RegMode Mode;
  int ValueIdx;   ///< Value stored when the trigger fires.
  int TriggerIdx; ///< The observed trigger value.
  int DelayIdx;   ///< Optional store delay (`after`).
  int CondIdx;    ///< Optional gating condition (`if`).
};

/// A single LLHD instruction.
class Instruction : public User {
public:
  Instruction(Opcode Op, Type *Ty, std::string Name = "")
      : User(Kind::Instruction, Ty, std::move(Name)), Op(Op) {}

  Opcode opcode() const { return Op; }
  BasicBlock *parent() const { return Parent; }
  Unit *parentUnit() const;

  /// Removes from the parent block without deleting.
  void removeFromParent();
  /// Removes from the parent block and deletes the instruction. The result
  /// must be unused.
  void eraseFromParent();

  //===------------------------------------------------------------------===//
  // Classification.
  //===------------------------------------------------------------------===//

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Ret || Op == Opcode::Halt ||
           Op == Opcode::Wait;
  }
  bool isBinaryArith() const {
    return Op >= Opcode::Add && Op <= Opcode::Srem;
  }
  bool isBinaryBitwise() const {
    return Op >= Opcode::And && Op <= Opcode::Xor;
  }
  bool isShift() const { return Op >= Opcode::Shl && Op <= Opcode::Ashr; }
  bool isCompare() const { return Op >= Opcode::Eq && Op <= Opcode::Sge; }
  bool isCast() const { return Op >= Opcode::Zext && Op <= Opcode::Trunc; }
  /// True for pure data-flow computations that can be freely moved, CSE'd
  /// and folded (no side effects, no interaction with time or signals).
  bool isPureDataFlow() const;
  /// True if the instruction writes state or interacts with the world
  /// (drv, st, call, reg, ...); such instructions must not be DCE'd even
  /// when their result is unused.
  bool hasSideEffects() const;

  //===------------------------------------------------------------------===//
  // Constant payload (Opcode::Const). Which field is valid follows from
  // the result type.
  //===------------------------------------------------------------------===//

  const IntValue &intValue() const { return CInt; }
  void setIntValue(IntValue V) { CInt = std::move(V); }
  const Time &timeValue() const { return CTime; }
  void setTimeValue(Time T) { CTime = T; }
  const LogicVec &logicValue() const { return CLogic; }
  void setLogicValue(LogicVec V) { CLogic = std::move(V); }
  uint64_t enumValue() const { return CEnum; }
  void setEnumValue(uint64_t V) { CEnum = V; }

  //===------------------------------------------------------------------===//
  // Immediates (Insf/Extf/Inss/Exts index or offset).
  //===------------------------------------------------------------------===//

  unsigned immediate() const { return Imm; }
  void setImmediate(unsigned I) { Imm = I; }

  //===------------------------------------------------------------------===//
  // Callee (Call / InstOp).
  //===------------------------------------------------------------------===//

  Unit *callee() const { return Callee; }
  void setCallee(Unit *U) { Callee = U; }
  /// Number of input operands of an `inst` (the rest are outputs).
  unsigned numInputs() const { return NumInputs; }
  void setNumInputs(unsigned N) { NumInputs = N; }

  //===------------------------------------------------------------------===//
  // Reg triggers.
  //===------------------------------------------------------------------===//

  const std::vector<RegTrigger> &regTriggers() const { return Triggers; }
  std::vector<RegTrigger> &regTriggers() { return Triggers; }

  //===------------------------------------------------------------------===//
  // Structured accessors for common shapes.
  //===------------------------------------------------------------------===//

  /// Br: true if this is a conditional branch.
  bool isConditionalBr() const {
    return Op == Opcode::Br && numOperands() == 3;
  }
  Value *brCondition() const { return operand(0); }
  BasicBlock *brDest(unsigned I) const; ///< 0 = false/only, 1 = true.

  /// Wait: destination block and operand classification.
  BasicBlock *waitDest() const;

  /// Phi: incoming pairs.
  unsigned numIncoming() const { return numOperands() / 2; }
  Value *incomingValue(unsigned I) const { return operand(2 * I); }
  BasicBlock *incomingBlock(unsigned I) const;
  void addIncoming(Value *V, BasicBlock *BB);
  void removeIncoming(unsigned I);

  static bool classof(const Value *V) {
    return V->valueKind() == Kind::Instruction;
  }

private:
  friend class BasicBlock;
  Opcode Op;
  BasicBlock *Parent = nullptr;
  unsigned Imm = 0;
  unsigned NumInputs = 0;
  Unit *Callee = nullptr;
  IntValue CInt;
  Time CTime;
  LogicVec CLogic;
  uint64_t CEnum = 0;
  std::vector<RegTrigger> Triggers;
};

} // namespace llhd

#endif // LLHD_IR_INSTRUCTION_H
