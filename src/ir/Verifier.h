//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Structural verification of LLHD IR: per-unit instruction legality
// (Table 1 / §2.5), terminator discipline, SSA dominance, operand typing.
// Also hosts the multi-level dialect checker (§2.2): Behavioural ⊃
// Structural ⊃ Netlist.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_VERIFIER_H
#define LLHD_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace llhd {

/// The three levels of the multi-level IR (§2.2).
enum class IRLevel {
  Behavioural, ///< Full IR: simulation, verification, testbenches.
  Structural,  ///< Input/output relations only; entity constructs.
  Netlist,     ///< Entities, sig/con/del/inst only.
};

const char *irLevelName(IRLevel L);

/// Verifies \p U; appends diagnostics to \p Errors. Returns true if clean.
bool verifyUnit(const Unit &U, std::vector<std::string> &Errors);

/// Verifies all units of \p M. Returns true if clean.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Checks whether \p U conforms to level \p L (legality of constructs,
/// not behaviour). Appends diagnostics; returns true if conformant.
bool checkUnitLevel(const Unit &U, IRLevel L,
                    std::vector<std::string> &Errors);

/// Checks whether every unit of \p M conforms to level \p L.
bool checkModuleLevel(const Module &M, IRLevel L,
                      std::vector<std::string> &Errors);

/// The lowest (most restrictive) level the module conforms to.
IRLevel classifyModule(const Module &M);

} // namespace llhd

#endif // LLHD_IR_VERIFIER_H
