//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Builds instructions with computed result types and inserts them at a
// configurable insertion point, in the style of llvm::IRBuilder.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_IRBUILDER_H
#define LLHD_IR_IRBUILDER_H

#include "ir/Module.h"

namespace llhd {

/// Construction helper with an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}
  explicit IRBuilder(BasicBlock *BB) : Ctx(BB->type()->context()) {
    setInsertPoint(BB);
  }

  Context &context() const { return Ctx; }

  /// Inserts at the end of \p BB from now on.
  void setInsertPoint(BasicBlock *BB) {
    Block = BB;
    Before = nullptr;
  }
  /// Inserts before \p I from now on.
  void setInsertPointBefore(Instruction *I) {
    Block = I->parent();
    Before = I;
  }
  BasicBlock *insertBlock() const { return Block; }

  /// Inserts an already-built instruction at the current point.
  Instruction *insert(Instruction *I);

  //===------------------------------------------------------------------===//
  // Constants and aggregates.
  //===------------------------------------------------------------------===//

  Instruction *constInt(unsigned Width, uint64_t V,
                        const std::string &Name = "");
  Instruction *constInt(IntValue V, const std::string &Name = "");
  Instruction *constTime(Time T, const std::string &Name = "");
  Instruction *constLogic(LogicVec V, const std::string &Name = "");
  Instruction *constEnum(EnumType *Ty, uint64_t V,
                         const std::string &Name = "");
  Instruction *arrayCreate(const std::vector<Value *> &Elems,
                           const std::string &Name = "");
  Instruction *structCreate(const std::vector<Value *> &Fields,
                            const std::string &Name = "");

  //===------------------------------------------------------------------===//
  // Data flow.
  //===------------------------------------------------------------------===//

  Instruction *unary(Opcode Op, Value *A, const std::string &Name = "");
  Instruction *binary(Opcode Op, Value *A, Value *B,
                      const std::string &Name = "");
  Instruction *neg(Value *A, const std::string &N = "") {
    return unary(Opcode::Neg, A, N);
  }
  Instruction *bitNot(Value *A, const std::string &N = "") {
    return unary(Opcode::Not, A, N);
  }
  Instruction *add(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Add, A, B, N);
  }
  Instruction *sub(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Sub, A, B, N);
  }
  Instruction *mul(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Mul, A, B, N);
  }
  Instruction *udiv(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Udiv, A, B, N);
  }
  Instruction *bitAnd(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::And, A, B, N);
  }
  Instruction *bitOr(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Or, A, B, N);
  }
  Instruction *bitXor(Value *A, Value *B, const std::string &N = "") {
    return binary(Opcode::Xor, A, B, N);
  }
  /// Comparison; result is i1.
  Instruction *cmp(Opcode Op, Value *A, Value *B,
                   const std::string &Name = "");
  /// Shift; \p Amount is any integer-typed value.
  Instruction *shift(Opcode Op, Value *A, Value *Amount,
                     const std::string &Name = "");
  Instruction *mux(Value *Array, Value *Selector,
                   const std::string &Name = "");
  Instruction *cast(Opcode Op, Type *To, Value *V,
                    const std::string &Name = "");

  //===------------------------------------------------------------------===//
  // Insertion / extraction. Work on values, signals and pointers.
  //===------------------------------------------------------------------===//

  Instruction *insf(Value *Agg, Value *V, unsigned Index,
                    const std::string &Name = "");
  Instruction *extf(Value *Agg, unsigned Index, const std::string &Name = "");
  Instruction *inss(Value *Target, Value *Slice, unsigned Offset,
                    const std::string &Name = "");
  Instruction *exts(Value *V, unsigned Offset, unsigned Length,
                    const std::string &Name = "");

  //===------------------------------------------------------------------===//
  // Memory.
  //===------------------------------------------------------------------===//

  Instruction *var(Value *Init, const std::string &Name = "");
  Instruction *ld(Value *Ptr, const std::string &Name = "");
  Instruction *st(Value *Ptr, Value *V);
  Instruction *alloc(Value *Init, const std::string &Name = "");
  Instruction *freeMem(Value *Ptr);

  //===------------------------------------------------------------------===//
  // Signals, registers, hierarchy.
  //===------------------------------------------------------------------===//

  Instruction *sig(Value *Init, const std::string &Name = "");
  Instruction *prb(Value *Signal, const std::string &Name = "");
  Instruction *drv(Value *Signal, Value *V, Value *Delay,
                   Value *Cond = nullptr);
  Instruction *con(Value *A, Value *B);
  Instruction *del(Value *Target, Value *Source, Value *Delay);

  /// One `reg` trigger as passed to the builder.
  struct RegEntry {
    Value *StoredValue;
    RegMode Mode;
    Value *Trigger;
    Value *Delay = nullptr; ///< Optional.
    Value *Cond = nullptr;  ///< Optional.
  };
  Instruction *reg(Value *Signal, const std::vector<RegEntry> &Entries);

  Instruction *inst(Unit *Callee, const std::vector<Value *> &Inputs,
                    const std::vector<Value *> &Outputs);

  //===------------------------------------------------------------------===//
  // Control and time flow.
  //===------------------------------------------------------------------===//

  Instruction *call(Unit *Callee, const std::vector<Value *> &Args,
                    const std::string &Name = "");
  Instruction *ret();
  Instruction *ret(Value *V);
  Instruction *br(BasicBlock *Dest);
  Instruction *condBr(Value *Cond, BasicBlock *IfFalse, BasicBlock *IfTrue);
  Instruction *halt();
  Instruction *wait(BasicBlock *Dest, const std::vector<Value *> &Observed,
                    Value *Timeout = nullptr);
  Instruction *phi(Type *Ty,
                   const std::vector<std::pair<Value *, BasicBlock *>> &In,
                   const std::string &Name = "");

private:
  Context &Ctx;
  BasicBlock *Block = nullptr;
  Instruction *Before = nullptr;
};

} // namespace llhd

#endif // LLHD_IR_IRBUILDER_H
