//===- ir/IRBuilder.cpp - Convenience IR construction ----------------------===//

#include "ir/IRBuilder.h"

using namespace llhd;

Instruction *IRBuilder::insert(Instruction *I) {
  assert(Block && "no insertion point set");
  if (Before)
    Block->insertBefore(I, Before);
  else
    Block->append(I);
  return I;
}

//===----------------------------------------------------------------------===//
// Constants and aggregates.
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::constInt(unsigned Width, uint64_t V,
                                 const std::string &Name) {
  return constInt(IntValue(Width, V), Name);
}

Instruction *IRBuilder::constInt(IntValue V, const std::string &Name) {
  auto *I = new Instruction(Opcode::Const, Ctx.intType(V.width()), Name);
  I->setIntValue(std::move(V));
  return insert(I);
}

Instruction *IRBuilder::constTime(Time T, const std::string &Name) {
  auto *I = new Instruction(Opcode::Const, Ctx.timeType(), Name);
  I->setTimeValue(T);
  return insert(I);
}

Instruction *IRBuilder::constLogic(LogicVec V, const std::string &Name) {
  auto *I = new Instruction(Opcode::Const, Ctx.logicType(V.width()), Name);
  I->setLogicValue(std::move(V));
  return insert(I);
}

Instruction *IRBuilder::constEnum(EnumType *Ty, uint64_t V,
                                  const std::string &Name) {
  assert(V < Ty->numValues() && "enum constant out of range");
  auto *I = new Instruction(Opcode::Const, Ty, Name);
  I->setEnumValue(V);
  return insert(I);
}

Instruction *IRBuilder::arrayCreate(const std::vector<Value *> &Elems,
                                    const std::string &Name) {
  assert(!Elems.empty() && "array literal needs at least one element");
  Type *ElemTy = Elems.front()->type();
  auto *I = new Instruction(Opcode::ArrayCreate,
                            Ctx.arrayType(Elems.size(), ElemTy), Name);
  for (Value *E : Elems) {
    assert(E->type() == ElemTy && "array elements must have one type");
    I->appendOperand(E);
  }
  return insert(I);
}

Instruction *IRBuilder::structCreate(const std::vector<Value *> &Fields,
                                     const std::string &Name) {
  std::vector<Type *> Tys;
  Tys.reserve(Fields.size());
  for (Value *F : Fields)
    Tys.push_back(F->type());
  auto *I =
      new Instruction(Opcode::StructCreate, Ctx.structType(Tys), Name);
  for (Value *F : Fields)
    I->appendOperand(F);
  return insert(I);
}

//===----------------------------------------------------------------------===//
// Data flow.
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::unary(Opcode Op, Value *A, const std::string &Name) {
  auto *I = new Instruction(Op, A->type(), Name);
  I->appendOperand(A);
  return insert(I);
}

Instruction *IRBuilder::binary(Opcode Op, Value *A, Value *B,
                               const std::string &Name) {
  assert(A->type() == B->type() && "binary operand type mismatch");
  auto *I = new Instruction(Op, A->type(), Name);
  I->appendOperand(A);
  I->appendOperand(B);
  return insert(I);
}

Instruction *IRBuilder::cmp(Opcode Op, Value *A, Value *B,
                            const std::string &Name) {
  assert(A->type() == B->type() && "comparison operand type mismatch");
  auto *I = new Instruction(Op, Ctx.boolType(), Name);
  I->appendOperand(A);
  I->appendOperand(B);
  return insert(I);
}

Instruction *IRBuilder::shift(Opcode Op, Value *A, Value *Amount,
                              const std::string &Name) {
  assert(Amount->type()->isInt() && "shift amount must be an integer");
  auto *I = new Instruction(Op, A->type(), Name);
  I->appendOperand(A);
  I->appendOperand(Amount);
  return insert(I);
}

Instruction *IRBuilder::mux(Value *Array, Value *Selector,
                            const std::string &Name) {
  auto *AT = llhd::cast<ArrayType>(Array->type());
  auto *I = new Instruction(Opcode::Mux, AT->element(), Name);
  I->appendOperand(Array);
  I->appendOperand(Selector);
  return insert(I);
}

Instruction *IRBuilder::cast(Opcode Op, Type *To, Value *V,
                             const std::string &Name) {
  auto *I = new Instruction(Op, To, Name);
  I->appendOperand(V);
  return insert(I);
}

//===----------------------------------------------------------------------===//
// Insertion / extraction.
//===----------------------------------------------------------------------===//

/// Element/field type of an aggregate at \p Index.
static Type *aggregateElement(Type *Ty, unsigned Index) {
  if (auto *AT = dyn_cast<ArrayType>(Ty)) {
    assert(Index < AT->length() && "array index out of range");
    return AT->element();
  }
  auto *ST = cast<StructType>(Ty);
  return ST->field(Index);
}

Instruction *IRBuilder::insf(Value *Agg, Value *V, unsigned Index,
                             const std::string &Name) {
  assert(aggregateElement(Agg->type(), Index) == V->type() &&
         "insf value type mismatch");
  auto *I = new Instruction(Opcode::Insf, Agg->type(), Name);
  I->setImmediate(Index);
  I->appendOperand(Agg);
  I->appendOperand(V);
  return insert(I);
}

Instruction *IRBuilder::extf(Value *Agg, unsigned Index,
                             const std::string &Name) {
  Type *Ty = Agg->type();
  Type *ResTy;
  if (auto *SigTy = dyn_cast<SignalType>(Ty))
    ResTy = Ctx.signalType(aggregateElement(SigTy->inner(), Index));
  else if (auto *PtrTy = dyn_cast<PointerType>(Ty))
    ResTy = Ctx.pointerType(aggregateElement(PtrTy->pointee(), Index));
  else
    ResTy = aggregateElement(Ty, Index);
  auto *I = new Instruction(Opcode::Extf, ResTy, Name);
  I->setImmediate(Index);
  I->appendOperand(Agg);
  return insert(I);
}

/// Result type of slicing \p Length units out of \p Ty at some offset.
static Type *sliceType(Context &Ctx, Type *Ty, unsigned Length) {
  if (Ty->isInt())
    return Ctx.intType(Length);
  if (Ty->isLogic())
    return Ctx.logicType(Length);
  auto *AT = cast<ArrayType>(Ty);
  return Ctx.arrayType(Length, AT->element());
}

Instruction *IRBuilder::exts(Value *V, unsigned Offset, unsigned Length,
                             const std::string &Name) {
  Type *Ty = V->type();
  Type *ResTy;
  if (auto *SigTy = dyn_cast<SignalType>(Ty))
    ResTy = Ctx.signalType(sliceType(Ctx, SigTy->inner(), Length));
  else if (auto *PtrTy = dyn_cast<PointerType>(Ty))
    ResTy = Ctx.pointerType(sliceType(Ctx, PtrTy->pointee(), Length));
  else
    ResTy = sliceType(Ctx, Ty, Length);
  auto *I = new Instruction(Opcode::Exts, ResTy, Name);
  I->setImmediate(Offset);
  I->appendOperand(V);
  return insert(I);
}

Instruction *IRBuilder::inss(Value *Target, Value *Slice, unsigned Offset,
                             const std::string &Name) {
  auto *I = new Instruction(Opcode::Inss, Target->type(), Name);
  I->setImmediate(Offset);
  I->appendOperand(Target);
  I->appendOperand(Slice);
  return insert(I);
}

//===----------------------------------------------------------------------===//
// Memory.
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::var(Value *Init, const std::string &Name) {
  auto *I = new Instruction(Opcode::Var, Ctx.pointerType(Init->type()), Name);
  I->appendOperand(Init);
  return insert(I);
}

Instruction *IRBuilder::ld(Value *Ptr, const std::string &Name) {
  auto *PT = llhd::cast<PointerType>(Ptr->type());
  auto *I = new Instruction(Opcode::Ld, PT->pointee(), Name);
  I->appendOperand(Ptr);
  return insert(I);
}

Instruction *IRBuilder::st(Value *Ptr, Value *V) {
  assert(llhd::cast<PointerType>(Ptr->type())->pointee() == V->type() &&
         "store type mismatch");
  auto *I = new Instruction(Opcode::St, Ctx.voidType());
  I->appendOperand(Ptr);
  I->appendOperand(V);
  return insert(I);
}

Instruction *IRBuilder::alloc(Value *Init, const std::string &Name) {
  auto *I =
      new Instruction(Opcode::Alloc, Ctx.pointerType(Init->type()), Name);
  I->appendOperand(Init);
  return insert(I);
}

Instruction *IRBuilder::freeMem(Value *Ptr) {
  auto *I = new Instruction(Opcode::Free, Ctx.voidType());
  I->appendOperand(Ptr);
  return insert(I);
}

//===----------------------------------------------------------------------===//
// Signals, registers, hierarchy.
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::sig(Value *Init, const std::string &Name) {
  auto *I = new Instruction(Opcode::Sig, Ctx.signalType(Init->type()), Name);
  I->appendOperand(Init);
  return insert(I);
}

Instruction *IRBuilder::prb(Value *Signal, const std::string &Name) {
  auto *ST = llhd::cast<SignalType>(Signal->type());
  auto *I = new Instruction(Opcode::Prb, ST->inner(), Name);
  I->appendOperand(Signal);
  return insert(I);
}

Instruction *IRBuilder::drv(Value *Signal, Value *V, Value *Delay,
                            Value *Cond) {
  assert(llhd::cast<SignalType>(Signal->type())->inner() == V->type() &&
         "drive value type mismatch");
  assert(Delay->type()->isTime() && "drive delay must be a time");
  auto *I = new Instruction(Opcode::Drv, Ctx.voidType());
  I->appendOperand(Signal);
  I->appendOperand(V);
  I->appendOperand(Delay);
  if (Cond) {
    assert(Cond->type()->isBool() && "drive condition must be i1");
    I->appendOperand(Cond);
  }
  return insert(I);
}

Instruction *IRBuilder::con(Value *A, Value *B) {
  assert(A->type() == B->type() && A->type()->isSignal() &&
         "con needs two signals of one type");
  auto *I = new Instruction(Opcode::Con, Ctx.voidType());
  I->appendOperand(A);
  I->appendOperand(B);
  return insert(I);
}

Instruction *IRBuilder::del(Value *Target, Value *Source, Value *Delay) {
  assert(Target->type() == Source->type() && Target->type()->isSignal() &&
         "del needs two signals of one type");
  assert(Delay->type()->isTime() && "del delay must be a time");
  auto *I = new Instruction(Opcode::Del, Ctx.voidType());
  I->appendOperand(Target);
  I->appendOperand(Source);
  I->appendOperand(Delay);
  return insert(I);
}

Instruction *IRBuilder::reg(Value *Signal,
                            const std::vector<RegEntry> &Entries) {
  auto *I = new Instruction(Opcode::Reg, Ctx.voidType());
  I->appendOperand(Signal);
  Type *Inner = llhd::cast<SignalType>(Signal->type())->inner();
  for (const RegEntry &E : Entries) {
    assert(E.StoredValue->type() == Inner && "reg value type mismatch");
    (void)Inner;
    RegTrigger T;
    T.Mode = E.Mode;
    T.ValueIdx = I->numOperands();
    I->appendOperand(E.StoredValue);
    T.TriggerIdx = I->numOperands();
    I->appendOperand(E.Trigger);
    T.DelayIdx = -1;
    if (E.Delay) {
      T.DelayIdx = I->numOperands();
      I->appendOperand(E.Delay);
    }
    T.CondIdx = -1;
    if (E.Cond) {
      T.CondIdx = I->numOperands();
      I->appendOperand(E.Cond);
    }
    I->regTriggers().push_back(T);
  }
  return insert(I);
}

Instruction *IRBuilder::inst(Unit *Callee, const std::vector<Value *> &Inputs,
                             const std::vector<Value *> &Outputs) {
  assert(Callee->inputs().size() == Inputs.size() &&
         Callee->outputs().size() == Outputs.size() &&
         "inst arity mismatch");
  auto *I = new Instruction(Opcode::InstOp, Ctx.voidType());
  I->setCallee(Callee);
  I->setNumInputs(Inputs.size());
  for (Value *V : Inputs)
    I->appendOperand(V);
  for (Value *V : Outputs)
    I->appendOperand(V);
  return insert(I);
}

//===----------------------------------------------------------------------===//
// Control and time flow.
//===----------------------------------------------------------------------===//

Instruction *IRBuilder::call(Unit *Callee, const std::vector<Value *> &Args,
                             const std::string &Name) {
  auto *I = new Instruction(Opcode::Call, Callee->returnType(), Name);
  I->setCallee(Callee);
  for (Value *V : Args)
    I->appendOperand(V);
  return insert(I);
}

Instruction *IRBuilder::ret() {
  return insert(new Instruction(Opcode::Ret, Ctx.voidType()));
}

Instruction *IRBuilder::ret(Value *V) {
  auto *I = new Instruction(Opcode::Ret, Ctx.voidType());
  I->appendOperand(V);
  return insert(I);
}

Instruction *IRBuilder::br(BasicBlock *Dest) {
  auto *I = new Instruction(Opcode::Br, Ctx.voidType());
  I->appendOperand(Dest);
  return insert(I);
}

Instruction *IRBuilder::condBr(Value *Cond, BasicBlock *IfFalse,
                               BasicBlock *IfTrue) {
  assert(Cond->type()->isBool() && "branch condition must be i1");
  auto *I = new Instruction(Opcode::Br, Ctx.voidType());
  I->appendOperand(Cond);
  I->appendOperand(IfFalse);
  I->appendOperand(IfTrue);
  return insert(I);
}

Instruction *IRBuilder::halt() {
  return insert(new Instruction(Opcode::Halt, Ctx.voidType()));
}

Instruction *IRBuilder::wait(BasicBlock *Dest,
                             const std::vector<Value *> &Observed,
                             Value *Timeout) {
  auto *I = new Instruction(Opcode::Wait, Ctx.voidType());
  I->appendOperand(Dest);
  if (Timeout) {
    assert(Timeout->type()->isTime() && "wait timeout must be a time");
    I->appendOperand(Timeout);
  }
  for (Value *V : Observed) {
    assert(V->type()->isSignal() && "wait observes signals");
    I->appendOperand(V);
  }
  return insert(I);
}

Instruction *IRBuilder::phi(
    Type *Ty, const std::vector<std::pair<Value *, BasicBlock *>> &In,
    const std::string &Name) {
  auto *I = new Instruction(Opcode::Phi, Ty, Name);
  for (const auto &[V, BB] : In) {
    assert(V->type() == Ty && "phi incoming type mismatch");
    I->appendOperand(V);
    I->appendOperand(BB);
  }
  return insert(I);
}
