//===- ir/BasicBlock.cpp - Control flow blocks -----------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Unit.h"

#include <algorithm>

using namespace llhd;

BasicBlock::~BasicBlock() {
  // First sever all def-use edges among the contained instructions so that
  // deletion order does not matter, then delete.
  for (Instruction *I : Insts)
    I->dropAllOperands();
  for (Instruction *I : Insts) {
    I->replaceAllUsesWith(nullptr);
    delete I;
  }
}

void BasicBlock::append(Instruction *I) {
  assert(!I->parent() && "instruction already has a parent");
  I->Parent = this;
  Insts.push_back(I);
}

void BasicBlock::insertBefore(Instruction *I, Instruction *Before) {
  insertAt(indexOf(Before), I);
}

void BasicBlock::insertAt(unsigned Idx, Instruction *I) {
  assert(!I->parent() && "instruction already has a parent");
  assert(Idx <= Insts.size() && "insertion index out of range");
  I->Parent = this;
  Insts.insert(Insts.begin() + Idx, I);
}

void BasicBlock::remove(Instruction *I) {
  assert(I->parent() == this && "instruction not in this block");
  auto It = std::find(Insts.begin(), Insts.end(), I);
  assert(It != Insts.end() && "instruction not found");
  Insts.erase(It);
  I->Parent = nullptr;
}

unsigned BasicBlock::indexOf(const Instruction *I) const {
  auto It = std::find(Insts.begin(), Insts.end(), I);
  assert(It != Insts.end() && "instruction not in this block");
  return It - Insts.begin();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  Instruction *T = terminator();
  if (!T)
    return Succs;
  switch (T->opcode()) {
  case Opcode::Br:
    if (T->numOperands() == 1) {
      Succs.push_back(cast<BasicBlock>(T->operand(0)));
    } else {
      Succs.push_back(T->brDest(0));
      Succs.push_back(T->brDest(1));
    }
    break;
  case Opcode::Wait:
    Succs.push_back(T->waitDest());
    break;
  default:
    break; // ret/halt have no successors.
  }
  return Succs;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  for (const Use *U : uses()) {
    auto *I = dyn_cast<Instruction>(U->user());
    if (!I || !I->isTerminator() || !I->parent())
      continue;
    BasicBlock *BB = I->parent();
    if (std::find(Preds.begin(), Preds.end(), BB) == Preds.end())
      Preds.push_back(BB);
  }
  return Preds;
}
