//===- ir/Verifier.cpp - IR well-formedness checks -------------------------===//

#include "ir/Verifier.h"

#include "analysis/Dominators.h"

#include <map>
#include <optional>
#include <set>

using namespace llhd;

const char *llhd::irLevelName(IRLevel L) {
  switch (L) {
  case IRLevel::Behavioural: return "behavioural";
  case IRLevel::Structural:  return "structural";
  case IRLevel::Netlist:     return "netlist";
  }
  return "";
}

namespace {

/// Per-unit verification state.
class UnitVerifier {
public:
  UnitVerifier(const Unit &U, std::vector<std::string> &Errors)
      : U(U), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    checkSignature();
    if (U.isDeclaration())
      return Errors.size() == Before;
    if (!U.hasBody()) {
      error("defined unit has no body");
      return false;
    }
    checkBlocks();
    // Definitions must dominate uses; the shared dominator analysis
    // (analysis/Dominators.h) answers the queries. Unreachable blocks are
    // dominated by nothing, matching the old private bitset computation.
    DT.emplace(const_cast<Unit &>(U));
    for (const BasicBlock *BB : U.blocks())
      for (const Instruction *I : BB->insts())
        checkInst(*I);
    if (U.isEntity())
      checkEntityDrives();
    return Errors.size() == Before;
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("@" + U.name() + ": " + Msg);
  }
  void error(const Instruction &I, const std::string &Msg) {
    std::string Where = opcodeName(I.opcode());
    if (I.hasName())
      Where += " %" + I.name();
    Errors.push_back("@" + U.name() + ": " + Msg + " in '" + Where + "'");
  }

  void checkSignature() {
    if (U.isFunction()) {
      if (!U.outputs().empty())
        error("functions cannot have outputs");
      return;
    }
    for (const Argument *A : U.inputs())
      if (!A->type()->isSignal())
        error("process/entity input '" + A->name() + "' is not a signal");
    for (const Argument *A : U.outputs())
      if (!A->type()->isSignal())
        error("process/entity output '" + A->name() + "' is not a signal");
    if (!U.returnType()->isVoid())
      error("only functions can have a return type");
  }

  void checkBlocks() {
    if (U.isEntity()) {
      if (U.blocks().size() != 1)
        error("entities have exactly one block");
      for (const Instruction *I : U.entry()->insts())
        if (I->isTerminator())
          error(*I, "terminator in entity body");
      return;
    }
    for (const BasicBlock *BB : U.blocks()) {
      if (BB->empty()) {
        error("block '" + BB->name() + "' is empty");
        continue;
      }
      if (!BB->terminator())
        error("block '" + BB->name() + "' lacks a terminator");
      for (const Instruction *I : BB->insts())
        if (I->isTerminator() && I != BB->back())
          error(*I, "terminator in the middle of a block");
    }
  }

  //===------------------------------------------------------------------===//
  // Dominance.
  //===------------------------------------------------------------------===//

  bool dominates(const BasicBlock *A, const BasicBlock *B) const {
    return DT && DT->isReachable(B) && DT->dominates(A, B);
  }

  /// True if def at \p Def is visible at use site (\p UseInst, operand to a
  /// phi counts at the incoming block's end).
  bool defDominatesUse(const Instruction *Def, const Instruction *UseInst,
                       unsigned OpIdx) const {
    const BasicBlock *DefBB = Def->parent();
    const BasicBlock *UseBB = UseInst->parent();
    if (UseInst->opcode() == Opcode::Phi) {
      // The value must dominate the end of the incoming block.
      const BasicBlock *Incoming =
          UseInst->incomingBlock(OpIdx / 2);
      return DefBB == Incoming || dominates(DefBB, Incoming);
    }
    if (DefBB == UseBB)
      return DefBB->indexOf(Def) < UseBB->indexOf(UseInst);
    return dominates(DefBB, UseBB);
  }

  //===------------------------------------------------------------------===//
  // Instruction checks.
  //===------------------------------------------------------------------===//

  bool legalInUnit(Opcode Op) const {
    switch (Op) {
    case Opcode::Wait:
    case Opcode::Halt:
      return U.isProcess();
    case Opcode::Ret:
      return U.isFunction();
    case Opcode::Br:
    case Opcode::Phi:
    case Opcode::Var:
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::Alloc:
    case Opcode::Free:
    case Opcode::Call:
      return U.isControlFlow();
    case Opcode::Sig:
    case Opcode::Prb:
    case Opcode::Drv:
      return U.isTimed();
    case Opcode::Reg:
    case Opcode::InstOp:
    case Opcode::Con:
    case Opcode::Del:
      return U.isEntity();
    default:
      return true;
    }
  }

  void checkInst(const Instruction &I) {
    if (!legalInUnit(I.opcode()))
      error(I, std::string("'") + opcodeName(I.opcode()) +
                   "' not allowed in this unit kind");

    // Null operands are always wrong.
    for (unsigned J = 0, E = I.numOperands(); J != E; ++J)
      if (!I.operand(J)) {
        error(I, "null operand");
        return;
      }

    checkOperandTypes(I);

    // Dominance of instruction operands.
    for (unsigned J = 0, E = I.numOperands(); J != E; ++J) {
      const auto *DefI = dyn_cast<Instruction>(I.operand(J));
      if (!DefI)
        continue;
      if (DefI->parentUnit() != &U) {
        error(I, "operand from another unit");
        continue;
      }
      if (U.isEntity())
        continue; // Data-flow graphs have no ordering constraint.
      if (!defDominatesUse(DefI, &I, J))
        error(I, "operand %" + DefI->name() + " does not dominate use");
    }

    // Arguments used must belong to this unit.
    for (unsigned J = 0, E = I.numOperands(); J != E; ++J)
      if (const auto *A = dyn_cast<Argument>(I.operand(J)))
        if (A->parent() != &U)
          error(I, "argument operand from another unit");

    if (I.opcode() == Opcode::Phi)
      checkPhi(I);
  }

  void checkPhi(const Instruction &I) {
    const BasicBlock *BB = I.parent();
    auto Preds = BB->predecessors();
    if (I.numIncoming() != Preds.size()) {
      error(I, "phi incoming count does not match predecessors");
      return;
    }
    for (unsigned J = 0; J != I.numIncoming(); ++J) {
      const BasicBlock *In = I.incomingBlock(J);
      bool Found = false;
      for (const BasicBlock *P : Preds)
        Found |= P == In;
      if (!Found)
        error(I, "phi incoming block is not a predecessor");
    }
  }

  /// Two unconditional drives of the same signal value in one entity body
  /// race every delta cycle: the data-flow evaluation order is
  /// unspecified, so the observed value flips between them. (Conditional
  /// drives and cross-instance conflicts are a design-level question --
  /// the lint multi-drive check handles those with resolution-aware
  /// exemptions; here we reject only the always-wrong intra-entity form.)
  void checkEntityDrives() {
    std::map<const Value *, const Instruction *> FirstDrv;
    for (const Instruction *I : U.entry()->insts()) {
      if (I->opcode() != Opcode::Drv || I->numOperands() == 4)
        continue;
      auto [It, Inserted] = FirstDrv.emplace(I->operand(0), I);
      if (!Inserted)
        error(*I, "duplicate unconditional drive of '" +
                      It->second->operand(0)->name() + "'");
    }
  }

  void checkOperandTypes(const Instruction &I) {
    switch (I.opcode()) {
    case Opcode::Const: {
      Type *Ty = I.type();
      if (!Ty->isInt() && !Ty->isTime() && !Ty->isLogic() && !Ty->isEnum())
        error(I, "invalid constant type");
      if (Ty->isInt() &&
          I.intValue().width() != ::llhd::cast<IntType>(Ty)->width())
        error(I, "constant width mismatch");
      break;
    }
    case Opcode::Drv: {
      auto *ST = dyn_cast<SignalType>(I.operand(0)->type());
      if (!ST) {
        error(I, "drv target is not a signal");
        break;
      }
      if (ST->inner() != I.operand(1)->type())
        error(I, "drv value type mismatch");
      if (!I.operand(2)->type()->isTime())
        error(I, "drv delay is not a time");
      if (I.numOperands() == 4 && !I.operand(3)->type()->isBool())
        error(I, "drv condition is not i1");
      break;
    }
    case Opcode::Prb:
      if (!I.operand(0)->type()->isSignal())
        error(I, "prb operand is not a signal");
      break;
    case Opcode::Br:
      if (I.numOperands() == 3 && !I.operand(0)->type()->isBool())
        error(I, "branch condition is not i1");
      for (unsigned J = I.numOperands() == 1 ? 0 : 1; J != I.numOperands();
           ++J) {
        const auto *Dest = dyn_cast<BasicBlock>(I.operand(J));
        if (!Dest)
          error(I, "branch destination is not a block");
        else if (Dest->parent() != &U)
          error(I, "branch destination in another unit");
      }
      break;
    case Opcode::Wait: {
      // wait %dest [for %time], %observed... -- the destination must be
      // a block of this unit; the edge operands must be signals (what to
      // observe), with at most one time-typed timeout.
      if (I.numOperands() == 0) {
        error(I, "wait without destination block");
        break;
      }
      const auto *Dest = dyn_cast<BasicBlock>(I.operand(0));
      if (!Dest) {
        error(I, "wait destination is not a block");
        break;
      }
      if (Dest->parent() != &U)
        error(I, "wait destination in another unit");
      unsigned Timeouts = 0;
      for (unsigned J = 1; J != I.numOperands(); ++J) {
        Type *Ty = I.operand(J)->type();
        if (Ty->isTime())
          ++Timeouts;
        else if (!Ty->isSignal())
          error(I, "wait operand is neither a signal nor a time");
      }
      if (Timeouts > 1)
        error(I, "wait with more than one timeout");
      break;
    }
    case Opcode::Reg: {
      if (!I.operand(0)->type()->isSignal()) {
        error(I, "reg target is not a signal");
        break;
      }
      int NumOps = (int)I.numOperands();
      for (const RegTrigger &T : I.regTriggers()) {
        if (T.ValueIdx < 0 || T.ValueIdx >= NumOps ||
            T.TriggerIdx < 0 || T.TriggerIdx >= NumOps ||
            T.DelayIdx >= NumOps || T.CondIdx >= NumOps) {
          error(I, "reg trigger operand index out of range");
          continue;
        }
        if (T.DelayIdx >= 0 && !I.operand(T.DelayIdx)->type()->isTime())
          error(I, "reg trigger delay is not a time");
        if (T.CondIdx >= 0 && !I.operand(T.CondIdx)->type()->isBool())
          error(I, "reg trigger condition is not i1");
      }
      break;
    }
    case Opcode::Call: {
      const Unit *Callee = I.callee();
      if (!Callee) {
        error(I, "call without callee");
        break;
      }
      if (!Callee->isIntrinsic() &&
          Callee->inputs().size() != I.numOperands())
        error(I, "call argument count mismatch");
      break;
    }
    case Opcode::InstOp: {
      const Unit *Callee = I.callee();
      if (!Callee) {
        error(I, "inst without callee");
        break;
      }
      if (Callee->isFunction())
        error(I, "inst of a function");
      if (!Callee->isDeclaration() &&
          (Callee->inputs().size() != I.numInputs() ||
           Callee->outputs().size() != I.numOperands() - I.numInputs()))
        error(I, "inst arity mismatch");
      break;
    }
    case Opcode::Ret:
      if (I.numOperands() == 1 &&
          I.operand(0)->type() != U.returnType())
        error(I, "return value type mismatch");
      if (I.numOperands() == 0 && !U.returnType()->isVoid())
        error(I, "missing return value");
      break;
    default:
      if (I.isBinaryArith() || I.isBinaryBitwise() || I.isCompare()) {
        if (I.operand(0)->type() != I.operand(1)->type())
          error(I, "operand type mismatch");
      }
      break;
    }
  }

  const Unit &U;
  std::vector<std::string> &Errors;
  std::optional<DominatorTree> DT;
};

/// Opcode legality for IR levels.
bool opcodeLegalAtLevel(Opcode Op, IRLevel L) {
  if (L == IRLevel::Behavioural)
    return true;
  switch (Op) {
  // Netlist core.
  case Opcode::Const:
  case Opcode::Sig:
  case Opcode::Con:
  case Opcode::Del:
  case Opcode::InstOp:
    return true;
  // Structural extras: pure data flow + prb/drv/reg.
  case Opcode::Prb:
  case Opcode::Drv:
  case Opcode::Reg:
  case Opcode::ArrayCreate:
  case Opcode::StructCreate:
  case Opcode::Mux:
  case Opcode::Insf:
  case Opcode::Extf:
  case Opcode::Inss:
  case Opcode::Exts:
    return L == IRLevel::Structural;
  default: {
    // Arithmetic etc. are structural-only.
    Instruction Probe(Op, nullptr);
    bool Pure = Probe.isPureDataFlow();
    return Pure && L == IRLevel::Structural;
  }
  }
}

} // namespace

bool llhd::verifyUnit(const Unit &U, std::vector<std::string> &Errors) {
  return UnitVerifier(U, Errors).run();
}

bool llhd::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool Ok = true;
  for (const auto &U : M.units())
    Ok &= verifyUnit(*U, Errors);
  return Ok;
}

bool llhd::checkUnitLevel(const Unit &U, IRLevel L,
                          std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  if (L != IRLevel::Behavioural && !U.isEntity() && !U.isDeclaration())
    Errors.push_back("@" + U.name() + ": only entities allowed at " +
                     std::string(irLevelName(L)) + " level");
  for (const BasicBlock *BB : U.blocks())
    for (const Instruction *I : BB->insts())
      if (!opcodeLegalAtLevel(I->opcode(), L))
        Errors.push_back("@" + U.name() + ": '" +
                         opcodeName(I->opcode()) + "' not allowed at " +
                         irLevelName(L) + " level");
  return Errors.size() == Before;
}

bool llhd::checkModuleLevel(const Module &M, IRLevel L,
                            std::vector<std::string> &Errors) {
  bool Ok = true;
  for (const auto &U : M.units())
    Ok &= checkUnitLevel(*U, L, Errors);
  return Ok;
}

IRLevel llhd::classifyModule(const Module &M) {
  std::vector<std::string> Ignored;
  if (checkModuleLevel(M, IRLevel::Netlist, Ignored))
    return IRLevel::Netlist;
  Ignored.clear();
  if (checkModuleLevel(M, IRLevel::Structural, Ignored))
    return IRLevel::Structural;
  return IRLevel::Behavioural;
}
