//===- ir/Module.h - LLHD modules -------------------------------*- C++ -*-===//
//
// A module is one LLHD source text (§2.3): a collection of functions,
// processes and entities with global `@` names. Modules can be combined
// by the Linker, which resolves declarations against definitions.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_MODULE_H
#define LLHD_IR_MODULE_H

#include "ir/Unit.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace llhd {

/// One LLHD translation unit.
class Module {
public:
  explicit Module(Context &Ctx, std::string Name = "")
      : Ctx(Ctx), Name(std::move(Name)) {}

  Context &context() const { return Ctx; }
  const std::string &name() const { return Name; }

  /// Creates a unit with a body. The global name must be unique.
  Unit *createFunction(const std::string &Name);
  Unit *createProcess(const std::string &Name);
  Unit *createEntity(const std::string &Name);
  /// Creates a body-less declaration of the given kind.
  Unit *declareUnit(Unit::Kind K, const std::string &Name);
  /// Returns the (possibly new) declaration of intrinsic `llhd.<suffix>`.
  Unit *intrinsic(const std::string &Name);

  /// Looks a unit up by its global name; null if absent.
  Unit *unitByName(const std::string &Name) const;
  /// Detaches and deletes \p U.
  void eraseUnit(Unit *U);
  /// Renames \p U, keeping the symbol table consistent.
  void renameUnit(Unit *U, const std::string &NewName);
  /// Moves \p U to the end of the unit list (used by the parser to keep
  /// the unit order equal to textual definition order).
  void moveUnitToEnd(Unit *U);

  const std::vector<std::unique_ptr<Unit>> &units() const { return Units; }

  /// Links all units of \p Src into this module (§2.3): declarations are
  /// resolved against definitions, duplicate declarations are merged, and
  /// duplicate definitions are an error. Both modules must share one
  /// Context. \p Src is left empty on success. Returns false and sets
  /// \p Error on conflict.
  bool linkFrom(Module &Src, std::string &Error);

  /// Approximate in-memory footprint in bytes (Table 4).
  size_t memoryFootprint() const;

private:
  Unit *addUnit(Unit::Kind K, const std::string &Name, bool Declaration);

  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Unit>> Units;
  std::map<std::string, Unit *> SymbolTable;
};

} // namespace llhd

#endif // LLHD_IR_MODULE_H
