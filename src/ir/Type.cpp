//===- ir/Type.cpp - LLHD type system -------------------------------------===//

#include "ir/Type.h"
#include "ir/Context.h"

using namespace llhd;

bool Type::isBool() const {
  const auto *IT = dyn_cast<IntType>(this);
  return IT && IT->width() == 1;
}

bool Type::isValueType() const {
  switch (TheKind) {
  case Kind::Int:
  case Kind::Enum:
  case Kind::Logic:
    return true;
  case Kind::Array:
    return cast<ArrayType>(this)->element()->isValueType();
  case Kind::Struct: {
    for (Type *F : cast<StructType>(this)->fields())
      if (!F->isValueType())
        return false;
    return true;
  }
  default:
    return false;
  }
}

unsigned Type::bitWidth() const {
  switch (TheKind) {
  case Kind::Int:
    return cast<IntType>(this)->width();
  case Kind::Logic:
    return cast<LogicType>(this)->width();
  case Kind::Enum: {
    // Bits needed to represent numValues() distinct values.
    unsigned N = cast<EnumType>(this)->numValues();
    unsigned Bits = 0;
    while ((1u << Bits) < N)
      ++Bits;
    return Bits == 0 ? 1 : Bits;
  }
  case Kind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return AT->length() * AT->element()->bitWidth();
  }
  case Kind::Struct: {
    unsigned Sum = 0;
    for (Type *F : cast<StructType>(this)->fields())
      Sum += F->bitWidth();
    return Sum;
  }
  default:
    assert(false && "type has no bit width");
    return 0;
  }
}

std::string Type::toString() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Time:
    return "time";
  case Kind::Int:
    return "i" + std::to_string(cast<IntType>(this)->width());
  case Kind::Enum:
    return "n" + std::to_string(cast<EnumType>(this)->numValues());
  case Kind::Logic:
    return "l" + std::to_string(cast<LogicType>(this)->width());
  case Kind::Pointer:
    return cast<PointerType>(this)->pointee()->toString() + "*";
  case Kind::Signal:
    return cast<SignalType>(this)->inner()->toString() + "$";
  case Kind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return "[" + std::to_string(AT->length()) + " x " +
           AT->element()->toString() + "]";
  }
  case Kind::Struct: {
    const auto *ST = cast<StructType>(this);
    std::string S = "{";
    for (unsigned I = 0, E = ST->numFields(); I != E; ++I) {
      if (I != 0)
        S += ", ";
      S += ST->field(I)->toString();
    }
    return S + "}";
  }
  }
  assert(false && "unknown type kind");
  return "";
}

//===----------------------------------------------------------------------===//
// Context
//===----------------------------------------------------------------------===//

Context::Context() {
  Void.reset(new VoidType(*this));
  TimeTy.reset(new TimeType(*this));
}

Context::~Context() = default;

IntType *Context::intType(unsigned Width) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = IntTypes[Width];
  if (!Slot)
    Slot.reset(new IntType(*this, Width));
  return Slot.get();
}

EnumType *Context::enumType(unsigned NumValues) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = EnumTypes[NumValues];
  if (!Slot)
    Slot.reset(new EnumType(*this, NumValues));
  return Slot.get();
}

LogicType *Context::logicType(unsigned Width) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = LogicTypes[Width];
  if (!Slot)
    Slot.reset(new LogicType(*this, Width));
  return Slot.get();
}

PointerType *Context::pointerType(Type *Pointee) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = PointerTypes[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(*this, Pointee));
  return Slot.get();
}

SignalType *Context::signalType(Type *Inner) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = SignalTypes[Inner];
  if (!Slot)
    Slot.reset(new SignalType(*this, Inner));
  return Slot.get();
}

ArrayType *Context::arrayType(unsigned Length, Type *Element) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = ArrayTypes[{Length, Element}];
  if (!Slot)
    Slot.reset(new ArrayType(*this, Length, Element));
  return Slot.get();
}

StructType *Context::structType(std::vector<Type *> Fields) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = StructTypes[Fields];
  if (!Slot)
    Slot.reset(new StructType(*this, std::move(Fields)));
  return Slot.get();
}

size_t Context::memoryFootprint() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = sizeof(Context);
  N += IntTypes.size() * (sizeof(IntType) + 48);
  N += EnumTypes.size() * (sizeof(EnumType) + 48);
  N += LogicTypes.size() * (sizeof(LogicType) + 48);
  N += PointerTypes.size() * (sizeof(PointerType) + 48);
  N += SignalTypes.size() * (sizeof(SignalType) + 48);
  N += ArrayTypes.size() * (sizeof(ArrayType) + 48);
  for (const auto &KV : StructTypes)
    N += sizeof(StructType) + 48 + KV.first.size() * sizeof(Type *) * 2;
  return N;
}
