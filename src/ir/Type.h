//===- ir/Type.h - LLHD type system -----------------------------*- C++ -*-===//
//
// The LLHD type system (§2.3 of the paper): void, time, iN integers, nN
// enumerations, lN nine-valued logic, T* pointers, T$ signals, [N x T]
// arrays and {T1,...} structs. Types are uniqued by the Context and
// compared by pointer identity.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_IR_TYPE_H
#define LLHD_IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <string>
#include <vector>

namespace llhd {

class Context;

/// Base class of all LLHD types. Uniqued per Context; compare with ==.
class Type {
public:
  enum class Kind {
    Void,
    Time,
    Int,
    Enum,
    Logic,
    Pointer,
    Signal,
    Array,
    Struct,
  };

  Kind kind() const { return TheKind; }
  Context &context() const { return Ctx; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isTime() const { return TheKind == Kind::Time; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isEnum() const { return TheKind == Kind::Enum; }
  bool isLogic() const { return TheKind == Kind::Logic; }
  bool isPointer() const { return TheKind == Kind::Pointer; }
  bool isSignal() const { return TheKind == Kind::Signal; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isStruct() const { return TheKind == Kind::Struct; }
  /// True for i1, the boolean type.
  bool isBool() const;
  /// True for types a register/signal can carry (no void/time/ptr/signal).
  bool isValueType() const;

  /// Renders in assembly syntax, e.g. "i32", "[4 x i8]", "i32$".
  std::string toString() const;

  /// Total bit count for Int/Enum/Logic and aggregates thereof; asserts
  /// otherwise.
  unsigned bitWidth() const;

protected:
  Type(Context &Ctx, Kind K) : Ctx(Ctx), TheKind(K) {}
  ~Type() = default;

private:
  friend class Context;
  Context &Ctx;
  Kind TheKind;
};

/// `void` — absence of a value (function returns only).
class VoidType : public Type {
public:
  static bool classof(const Type *T) { return T->kind() == Kind::Void; }

private:
  friend class Context;
  explicit VoidType(Context &Ctx) : Type(Ctx, Kind::Void) {}
};

/// `time` — simulation time points and spans.
class TimeType : public Type {
public:
  static bool classof(const Type *T) { return T->kind() == Kind::Time; }

private:
  friend class Context;
  explicit TimeType(Context &Ctx) : Type(Ctx, Kind::Time) {}
};

/// `iN` — two-state integer of N bits.
class IntType : public Type {
public:
  unsigned width() const { return Width; }
  static bool classof(const Type *T) { return T->kind() == Kind::Int; }

private:
  friend class Context;
  IntType(Context &Ctx, unsigned Width) : Type(Ctx, Kind::Int), Width(Width) {}
  unsigned Width;
};

/// `nN` — enumeration over N distinct values (0 .. N-1).
class EnumType : public Type {
public:
  /// Number of distinct values.
  unsigned numValues() const { return Num; }
  static bool classof(const Type *T) { return T->kind() == Kind::Enum; }

private:
  friend class Context;
  EnumType(Context &Ctx, unsigned Num) : Type(Ctx, Kind::Enum), Num(Num) {}
  unsigned Num;
};

/// `lN` — IEEE 1164 nine-valued logic vector of N bits.
class LogicType : public Type {
public:
  unsigned width() const { return Width; }
  static bool classof(const Type *T) { return T->kind() == Kind::Logic; }

private:
  friend class Context;
  LogicType(Context &Ctx, unsigned Width)
      : Type(Ctx, Kind::Logic), Width(Width) {}
  unsigned Width;
};

/// `T*` — pointer to stack or heap memory holding a T.
class PointerType : public Type {
public:
  Type *pointee() const { return Pointee; }
  static bool classof(const Type *T) { return T->kind() == Kind::Pointer; }

private:
  friend class Context;
  PointerType(Context &Ctx, Type *Pointee)
      : Type(Ctx, Kind::Pointer), Pointee(Pointee) {}
  Type *Pointee;
};

/// `T$` — a physical signal wire carrying a T.
class SignalType : public Type {
public:
  Type *inner() const { return Inner; }
  static bool classof(const Type *T) { return T->kind() == Kind::Signal; }

private:
  friend class Context;
  SignalType(Context &Ctx, Type *Inner)
      : Type(Ctx, Kind::Signal), Inner(Inner) {}
  Type *Inner;
};

/// `[N x T]` — array of N elements.
class ArrayType : public Type {
public:
  unsigned length() const { return Length; }
  Type *element() const { return Element; }
  static bool classof(const Type *T) { return T->kind() == Kind::Array; }

private:
  friend class Context;
  ArrayType(Context &Ctx, unsigned Length, Type *Element)
      : Type(Ctx, Kind::Array), Length(Length), Element(Element) {}
  unsigned Length;
  Type *Element;
};

/// `{T1, T2, ...}` — structure with positional fields.
class StructType : public Type {
public:
  unsigned numFields() const { return Fields.size(); }
  Type *field(unsigned I) const {
    assert(I < Fields.size() && "field index out of range");
    return Fields[I];
  }
  const std::vector<Type *> &fields() const { return Fields; }
  static bool classof(const Type *T) { return T->kind() == Kind::Struct; }

private:
  friend class Context;
  StructType(Context &Ctx, std::vector<Type *> Fields)
      : Type(Ctx, Kind::Struct), Fields(std::move(Fields)) {}
  std::vector<Type *> Fields;
};

} // namespace llhd

#endif // LLHD_IR_TYPE_H
