//===- blaze/Blaze.h - Accelerated bytecode engine (LLHD-Blaze) --*- C++ -*-===//
//
// The accelerated simulator of §6.1. The paper's LLHD-Blaze JIT-compiles
// units via LLVM; this environment has no LLVM, so Blaze implements the
// same idea one notch lower (documented in DESIGN.md): each unit is
// compiled once at elaboration into dense register-based bytecode —
// constants materialised up front, value slots resolved to indices, phis
// lowered to edge copies — and dispatched in a tight loop. The LLHD
// optimisation pipeline runs before compilation, mirroring the paper's
// use of LLVM -O on the generated IR.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_BLAZE_BLAZE_H
#define LLHD_BLAZE_BLAZE_H

#include "jit/Jit.h"
#include "sim/Interp.h"

#include <memory>

namespace llhd {

struct LirProgram;

/// The LLHD-Blaze engine.
class BlazeSim {
public:
  struct BlazeOptions : SimOptions {
    /// Run CF/IS/CSE/DCE over a clone of the design before compiling
    /// (the "JIT with optimisations" configuration; disable for the
    /// ablation bench).
    bool Optimize = true;
    /// Native code generation (src/jit/): on by default; every failure
    /// mode (no host compiler, unsupported ops) falls back to the
    /// interpreted LIR path per process.
    jit::JitOptions Jit{jit::JitOptions::Mode::On, ""};
  };

  /// Compiles \p Top of \p M. The module itself is left untouched: the
  /// optimising configuration works on an internal clone.
  BlazeSim(Module &M, const std::string &Top, BlazeOptions Opts);
  BlazeSim(Module &M, const std::string &Top);
  /// Batch form: runs over an immutable program from buildProgram(),
  /// shared with any number of concurrent sibling engines.
  BlazeSim(std::shared_ptr<const LirProgram> Prog, SimOptions Opts);
  ~BlazeSim();

  /// Clones \p M, optimises, elaborates \p Top and compiles the result
  /// into an immutable program (including native code when \p Opts.Jit
  /// enables it). The returned program keeps the optimised clone alive
  /// and can back any number of concurrent BlazeSim instances. Null +
  /// \p Err on clone/elaboration failure.
  static std::shared_ptr<const LirProgram>
  buildProgram(Module &M, const std::string &Top, const BlazeOptions &Opts,
               std::string &Err);

  bool valid() const;
  const std::string &error() const;

  /// Runs to completion; after restore(), continues from the
  /// checkpointed instant instead.
  SimStats run();

  /// Live options; mutate before run() to wire run-control hooks.
  SimOptions &options();

  /// Serializes the full runtime state (sim/Checkpoint.h). Blaze images
  /// are keyed on the optimised clone's hash: they interchange with the
  /// other engines only under Optimize = false.
  void checkpoint(std::vector<uint8_t> &Out);

  /// Restores a checkpoint() image; JIT-bound processes rebind their
  /// native state, deopting per instance when the image's resumption
  /// point has no native entry. False + Err on mismatch or corruption.
  bool restore(const std::vector<uint8_t> &In, std::string &Err);

  const Trace &trace() const;
  const SignalTable &signals() const;
  /// The elaborated design this engine simulates.
  const Design &design() const;
  /// What the JIT did at construction (Enabled false when off).
  const jit::JitStats &jitStats() const;
  /// The generated C++ translation unit ("" when nothing was emitted).
  const std::string &jitSource() const;

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace llhd

#endif // LLHD_BLAZE_BLAZE_H
