//===- blaze/Blaze.cpp - Accelerated engine (LLHD-Blaze) -----------------------===//
//
// Blaze's compilation is now a thin pass over the shared lowered runtime
// IR (sim/Lir.h) instead of a second opcode walk over ir::Instruction:
// the engine clones the caller's module, runs the LLHD optimisation
// pipeline over the clone (the paper's "JIT with optimisations"
// configuration, one notch below LLVM), elaborates, and then executes
// the same LIR through the same execution core as the reference
// interpreter (sim/LirEngine.h). Engine semantics are therefore shared
// by construction; what distinguishes Blaze is the pre-compilation
// optimisation of the simulated module itself.
//
//===----------------------------------------------------------------------===//

#include "blaze/Blaze.h"
#include "asm/Parser.h"
#include "asm/Printer.h"
#include "passes/Passes.h"
#include "sim/LirEngine.h"

#include <memory>

using namespace llhd;

namespace {
/// Keeps the optimised clone alive for the program's lifetime (the
/// program's Units/Instructions point into it). The clone lives in the
/// caller's Context, which must outlive the program.
struct ClonedModule {
  Module M;
  ClonedModule(Context &Ctx, std::string Name) : M(Ctx, std::move(Name)) {}
};
} // namespace

struct BlazeSim::Impl {
  std::string Err;
  std::unique_ptr<LirEngine> Eng;
  Trace EmptyTr;
  Design EmptyD;

  Impl(Module &M, const std::string &Top, const BlazeOptions &O) {
    std::shared_ptr<const LirProgram> Prog =
        BlazeSim::buildProgram(M, Top, O, Err);
    if (Prog)
      mkEngine(std::move(Prog), O);
  }

  Impl(std::shared_ptr<const LirProgram> Prog, SimOptions O) {
    if (!Prog || !Prog->D.ok()) {
      Err = Prog ? Prog->D.Error : "null program";
      return;
    }
    mkEngine(std::move(Prog), std::move(O));
  }

  void mkEngine(std::shared_ptr<const LirProgram> Prog, SimOptions O) {
    Eng = std::make_unique<LirEngine>(std::move(Prog), std::move(O));
    Eng->EngineName = "blaze";
    Eng->build();
  }
};

std::shared_ptr<const LirProgram>
BlazeSim::buildProgram(Module &M, const std::string &Top,
                       const BlazeOptions &O, std::string &Err) {
  // Clone the module so optimisation does not disturb the caller.
  auto Holder =
      std::make_shared<ClonedModule>(M.context(), M.name() + ".blaze");
  ParseResult R = parseModule(printModule(M), Holder->M);
  if (!R.Ok) {
    Err = "internal clone failed: " + R.Error;
    return nullptr;
  }
  if (O.Optimize)
    runStandardOptimizations(Holder->M);
  Design D = elaborate(Holder->M, Top);
  if (!D.ok()) {
    Err = D.Error;
    return nullptr;
  }
  return LirProgram::build(std::move(D), O.Jit, std::move(Holder));
}

BlazeSim::BlazeSim(Module &M, const std::string &Top, BlazeOptions Opts)
    : P(std::make_unique<Impl>(M, Top, Opts)) {}

BlazeSim::BlazeSim(Module &M, const std::string &Top)
    : BlazeSim(M, Top, BlazeOptions()) {}

BlazeSim::BlazeSim(std::shared_ptr<const LirProgram> Prog, SimOptions Opts)
    : P(std::make_unique<Impl>(std::move(Prog), std::move(Opts))) {}

BlazeSim::~BlazeSim() = default;

bool BlazeSim::valid() const { return P->Err.empty(); }
const std::string &BlazeSim::error() const { return P->Err; }
SimStats BlazeSim::run() { return P->Eng ? P->Eng->run() : SimStats(); }
SimOptions &BlazeSim::options() {
  static SimOptions Dummy;
  return P->Eng ? P->Eng->Opts : Dummy;
}
void BlazeSim::checkpoint(std::vector<uint8_t> &Out) {
  if (P->Eng)
    P->Eng->checkpoint(Out);
}
bool BlazeSim::restore(const std::vector<uint8_t> &In, std::string &Err) {
  if (!P->Eng) {
    Err = "engine failed to build";
    return false;
  }
  return P->Eng->restore(In, Err);
}
const Trace &BlazeSim::trace() const {
  return P->Eng ? P->Eng->Tr : P->EmptyTr;
}
const SignalTable &BlazeSim::signals() const {
  return P->Eng ? P->Eng->Signals : P->EmptyD.Signals;
}
const Design &BlazeSim::design() const {
  return P->Eng ? P->Eng->D : P->EmptyD;
}
const jit::JitStats &BlazeSim::jitStats() const {
  static const jit::JitStats Empty;
  return P->Eng ? P->Eng->jitStats() : Empty;
}
const std::string &BlazeSim::jitSource() const {
  static const std::string Empty;
  return P->Eng ? P->Eng->jitSource() : Empty;
}
