//===- blaze/Blaze.cpp - Accelerated bytecode engine ---------------------------===//

#include "blaze/Blaze.h"
#include "asm/Parser.h"
#include "asm/Printer.h"
#include "passes/Passes.h"
#include "sim/EventLoop.h"
#include "sim/RtOps.h"
#include "support/DepthPool.h"

#include <algorithm>
#include <map>
#include <memory>

using namespace llhd;

namespace {

//===----------------------------------------------------------------------===//
// Bytecode
//===----------------------------------------------------------------------===//

enum class BcOpc : uint8_t {
  Pure,    ///< frame[Dst] = evalPure(IrOp, frame[Ext...]).
  Prb,     ///< frame[Dst] = signal read of frame[A].
  Drv,     ///< drive frame[A] with frame[B] after frame[C] if frame[Dd].
  Jmp,     ///< pc = Jmp0.
  CondJmp, ///< pc = frame[A] ? Jmp1 : Jmp0.
  Copy,    ///< frame[Dst] = frame[A] (phi edge copies).
  Wait,    ///< suspend; resume at Jmp0; timeout frame[A]; observe Ext.
  Halt,
  Ret,     ///< return frame[A] (A = -1: void).
  CallFn,  ///< frame[Dst] = call Src->callee() with frame[Ext...].
  VarOp,   ///< memory cell from frame[A]; pointer into frame[Dst].
  LdOp,    ///< frame[Dst] = memory[frame[A]].
  StOp,    ///< memory[frame[A]] = frame[B].
  RegOp,   ///< register triggers; metadata in Src.
  DelOp,   ///< transport delay rule; metadata in Src.
  Nop,
};

struct BcOp {
  BcOpc C = BcOpc::Nop;
  Opcode IrOp = Opcode::Halt;
  int32_t Dst = -1;
  int32_t A = -1, B = -1, Cc = -1, Dd = -1;
  /// Pure/insf/exts immediate; for RegOp/DelOp, the base index into the
  /// per-instance RegPrev/DelPrev state arrays.
  uint32_t Imm = 0;
  int32_t Jmp0 = -1, Jmp1 = -1;
  std::vector<int32_t> Ext;
  const Instruction *Src = nullptr;
};

/// One unit compiled to bytecode (shared across instances).
struct BcUnit {
  Unit *U = nullptr;
  std::vector<BcOp> Ops;
  uint32_t NumSlots = 0;
  /// Slots [0, NumValues) are the unit's dense value numbering (see
  /// Unit::numberValues); the rest are compiler scratch.
  uint32_t NumValues = 0;
  /// Constant preloads: (slot, value).
  std::vector<std::pair<uint32_t, RtValue>> ConstSlots;
  uint32_t NumRegPrev = 0, NumDelPrev = 0;
};

/// Compiles one unit into bytecode.
class Compiler {
public:
  explicit Compiler(Unit &U) { compile(U); }
  BcUnit take() { return std::move(BC); }

private:
  /// A value's frame slot is its dense value number.
  uint32_t slotOf(Value *V) {
    assert(V->valueNumber() < BC.NumValues && "value not numbered");
    return V->valueNumber();
  }

  uint32_t freshSlot() { return BC.NumSlots++; }

  void compile(Unit &U) {
    BC.U = &U;
    BC.NumValues = U.numberValues();
    BC.NumSlots = BC.NumValues;

    if (U.isEntity()) {
      compileEntityBody(U);
      return;
    }

    // Control flow: emit blocks in order, then fix jump targets and
    // insert phi edge-copy trampolines. Blocks are numbered densely by
    // numberValues(), so the pc table is a flat vector.
    std::vector<uint32_t> BlockPc(U.blocks().size(), 0);
    struct PendingJump {
      uint32_t Pc;
      int WhichTarget; // 0 = Jmp0, 1 = Jmp1.
      const BasicBlock *Pred;
      const BasicBlock *Target;
    };
    std::vector<PendingJump> Pending;

    for (BasicBlock *BB : U.blocks()) {
      BlockPc[BB->valueNumber()] = BC.Ops.size();
      for (Instruction *I : BB->insts())
        emitInst(I, BB, Pending);
    }

    // Edge trampolines: copy phi incomings staged through scratch slots.
    // Keyed by (pred, target) block numbers; the edge count is small, so
    // a linear scan over a flat vector beats a node-based map.
    std::vector<std::pair<uint64_t, uint32_t>> EdgePc;
    for (PendingJump &PJ : Pending) {
      uint64_t Key = (uint64_t(PJ.Pred->valueNumber()) << 32) |
                     PJ.Target->valueNumber();
      uint32_t TargetPc;
      auto EIt = std::find_if(
          EdgePc.begin(), EdgePc.end(),
          [Key](const auto &P) { return P.first == Key; });
      if (EIt != EdgePc.end()) {
        TargetPc = EIt->second;
      } else {
        // Collect phi copies for this edge.
        std::vector<std::pair<uint32_t, uint32_t>> Copies; // (src, phi).
        for (Instruction *I : PJ.Target->insts()) {
          if (I->opcode() != Opcode::Phi)
            continue;
          for (unsigned J = 0; J != I->numIncoming(); ++J)
            if (I->incomingBlock(J) == PJ.Pred)
              Copies.push_back({slotOf(I->incomingValue(J)), slotOf(I)});
        }
        if (Copies.empty()) {
          TargetPc = BlockPc[PJ.Target->valueNumber()];
        } else {
          TargetPc = BC.Ops.size();
          // Stage all reads first so phi-reads-phi is safe.
          std::vector<uint32_t> Scratch;
          for (auto &[SrcS, PhiS] : Copies) {
            uint32_t Tmp = freshSlot();
            Scratch.push_back(Tmp);
            BcOp Op;
            Op.C = BcOpc::Copy;
            Op.Dst = Tmp;
            Op.A = SrcS;
            BC.Ops.push_back(Op);
          }
          for (unsigned J = 0; J != Copies.size(); ++J) {
            BcOp Op;
            Op.C = BcOpc::Copy;
            Op.Dst = Copies[J].second;
            Op.A = Scratch[J];
            BC.Ops.push_back(Op);
          }
          BcOp Jump;
          Jump.C = BcOpc::Jmp;
          Jump.Jmp0 = BlockPc[PJ.Target->valueNumber()];
          BC.Ops.push_back(Jump);
        }
        EdgePc.push_back({Key, TargetPc});
      }
      if (PJ.WhichTarget == 0)
        BC.Ops[PJ.Pc].Jmp0 = TargetPc;
      else
        BC.Ops[PJ.Pc].Jmp1 = TargetPc;
    }
  }

  template <typename PendingVec>
  void emitInst(Instruction *I, BasicBlock *BB, PendingVec &Pending) {
    switch (I->opcode()) {
    case Opcode::Const:
      BC.ConstSlots.push_back({slotOf(I), constValue(*I)});
      return;
    case Opcode::Phi:
      (void)slotOf(I); // Filled by edge copies.
      return;
    case Opcode::Prb: {
      BcOp Op;
      Op.C = BcOpc::Prb;
      Op.Dst = slotOf(I);
      Op.A = slotOf(I->operand(0));
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Drv: {
      BcOp Op;
      Op.C = BcOpc::Drv;
      Op.A = slotOf(I->operand(0));
      Op.B = slotOf(I->operand(1));
      Op.Cc = slotOf(I->operand(2));
      Op.Dd = I->numOperands() == 4 ? slotOf(I->operand(3)) : -1;
      Op.Src = I;
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Br: {
      BcOp Op;
      if (I->numOperands() == 1) {
        Op.C = BcOpc::Jmp;
        BC.Ops.push_back(Op);
        Pending.push_back({(uint32_t)BC.Ops.size() - 1, 0, BB,
                           cast<BasicBlock>(I->operand(0))});
      } else {
        Op.C = BcOpc::CondJmp;
        Op.A = slotOf(I->operand(0));
        BC.Ops.push_back(Op);
        Pending.push_back(
            {(uint32_t)BC.Ops.size() - 1, 0, BB, I->brDest(0)});
        Pending.push_back(
            {(uint32_t)BC.Ops.size() - 1, 1, BB, I->brDest(1)});
      }
      return;
    }
    case Opcode::Wait: {
      BcOp Op;
      Op.C = BcOpc::Wait;
      for (unsigned J = 1, E = I->numOperands(); J != E; ++J) {
        if (I->operand(J)->type()->isTime())
          Op.A = slotOf(I->operand(J));
        else
          Op.Ext.push_back(slotOf(I->operand(J)));
      }
      BC.Ops.push_back(Op);
      Pending.push_back(
          {(uint32_t)BC.Ops.size() - 1, 0, BB, I->waitDest()});
      return;
    }
    case Opcode::Halt: {
      BcOp Op;
      Op.C = BcOpc::Halt;
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Ret: {
      BcOp Op;
      Op.C = BcOpc::Ret;
      Op.A = I->numOperands() == 1 ? (int32_t)slotOf(I->operand(0)) : -1;
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Call: {
      BcOp Op;
      Op.C = BcOpc::CallFn;
      Op.Dst = I->type()->isVoid() ? -1 : (int32_t)slotOf(I);
      for (unsigned J = 0; J != I->numOperands(); ++J)
        Op.Ext.push_back(slotOf(I->operand(J)));
      Op.Src = I;
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Var:
    case Opcode::Alloc: {
      BcOp Op;
      Op.C = BcOpc::VarOp;
      Op.Dst = slotOf(I);
      Op.A = slotOf(I->operand(0));
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Ld: {
      BcOp Op;
      Op.C = BcOpc::LdOp;
      Op.Dst = slotOf(I);
      Op.A = slotOf(I->operand(0));
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::St: {
      BcOp Op;
      Op.C = BcOpc::StOp;
      Op.A = slotOf(I->operand(0));
      Op.B = slotOf(I->operand(1));
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Free:
      return; // Cells live until the frame dies.
    default: {
      assert(I->isPureDataFlow() && "unexpected opcode");
      BcOp Op;
      Op.C = BcOpc::Pure;
      Op.IrOp = I->opcode();
      Op.Dst = slotOf(I);
      Op.Imm = I->immediate();
      Op.Src = I;
      for (unsigned J = 0; J != I->numOperands(); ++J)
        Op.Ext.push_back(slotOf(I->operand(J)));
      BC.Ops.push_back(Op);
      return;
    }
    }
  }

  void compileEntityBody(Unit &U) {
    for (Instruction *I : U.entityBlock()->insts()) {
      switch (I->opcode()) {
      case Opcode::Sig:
      case Opcode::Con:
      case Opcode::InstOp:
        (void)slotOf(I); // Bound at elaboration (sig only).
        continue;
      case Opcode::Extf:
      case Opcode::Exts:
        if (I->type()->isSignal()) {
          (void)slotOf(I); // Sub-signal bound at elaboration.
          continue;
        }
        break;
      case Opcode::Reg: {
        BcOp Op;
        Op.C = BcOpc::RegOp;
        Op.Src = I;
        Op.A = slotOf(I->operand(0)); // Target signal.
        for (unsigned J = 1; J != I->numOperands(); ++J)
          Op.Ext.push_back(slotOf(I->operand(J)));
        Op.Imm = BC.NumRegPrev; // Trigger state base index.
        BC.NumRegPrev += I->regTriggers().size();
        BC.Ops.push_back(Op);
        continue;
      }
      case Opcode::Del: {
        BcOp Op;
        Op.C = BcOpc::DelOp;
        Op.Src = I;
        Op.A = slotOf(I->operand(0));
        Op.B = slotOf(I->operand(1));
        Op.Cc = slotOf(I->operand(2));
        Op.Imm = BC.NumDelPrev++; // Prev-value state index.
        BC.Ops.push_back(Op);
        continue;
      }
      default:
        break;
      }
      emitEntityInst(I);
    }
  }

  void emitEntityInst(Instruction *I) {
    switch (I->opcode()) {
    case Opcode::Const:
      BC.ConstSlots.push_back({slotOf(I), constValue(*I)});
      return;
    case Opcode::Prb: {
      BcOp Op;
      Op.C = BcOpc::Prb;
      Op.Dst = slotOf(I);
      Op.A = slotOf(I->operand(0));
      BC.Ops.push_back(Op);
      return;
    }
    case Opcode::Drv: {
      BcOp Op;
      Op.C = BcOpc::Drv;
      Op.A = slotOf(I->operand(0));
      Op.B = slotOf(I->operand(1));
      Op.Cc = slotOf(I->operand(2));
      Op.Dd = I->numOperands() == 4 ? slotOf(I->operand(3)) : -1;
      Op.Src = I;
      BC.Ops.push_back(Op);
      return;
    }
    default: {
      assert(I->isPureDataFlow() && "unexpected entity opcode");
      BcOp Op;
      Op.C = BcOpc::Pure;
      Op.IrOp = I->opcode();
      Op.Dst = slotOf(I);
      Op.Imm = I->immediate();
      Op.Src = I;
      for (unsigned J = 0; J != I->numOperands(); ++J)
        Op.Ext.push_back(slotOf(I->operand(J)));
      BC.Ops.push_back(Op);
      return;
    }
    }
  }

  BcUnit BC;
};

//===----------------------------------------------------------------------===//
// Runtime state
//===----------------------------------------------------------------------===//

struct BcProcState {
  const BcUnit *BC = nullptr;
  const UnitInstance *Inst = nullptr;
  std::vector<RtValue> Frame;
  std::vector<RtValue> Memory;
  uint32_t Pc = 0;
  enum class St { Ready, Waiting, Halted } State = St::Ready;
  std::vector<SignalId> Sensitivity;
  uint64_t WakeGen = 0;
};

struct BcEntState {
  const BcUnit *BC = nullptr;
  const UnitInstance *Inst = nullptr;
  std::vector<RtValue> Frame;
  std::vector<RtValue> RegPrev;
  std::vector<bool> RegPrevValid;
  std::vector<RtValue> DelPrev;
};

} // namespace

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

struct BlazeSim::Impl {
  Context &Ctx;
  Module Cloned;
  Design D;
  BlazeOptions Opts;
  Scheduler Sched;
  Trace Tr;
  SimStats Stats;
  Time Now;
  bool FinishRequested = false;
  std::string Err;

  std::map<Unit *, BcUnit> Units;
  std::vector<BcProcState> Procs;
  std::vector<BcEntState> Ents;

  /// Depth-indexed pools of function frames and call-argument buffers,
  /// reused across calls so steady-state function execution does not
  /// allocate.
  struct FnFrame {
    std::vector<RtValue> Frame;
    std::vector<RtValue> Memory;
  };
  DepthPool<FnFrame> FnPool;
  DepthPool<std::vector<RtValue>> ArgPool;

  Impl(Module &M, const std::string &Top, BlazeOptions O)
      : Ctx(M.context()), Cloned(Ctx, M.name() + ".blaze"), Opts(O),
        Tr(O.TraceMode) {
    // Clone the module so optimisation does not disturb the caller.
    ParseResult R = parseModule(printModule(M), Cloned);
    if (!R.Ok) {
      Err = "internal clone failed: " + R.Error;
      return;
    }
    if (Opts.Optimize)
      runStandardOptimizations(Cloned);
    D = elaborate(Cloned, Top);
    if (!D.ok()) {
      Err = D.Error;
      return;
    }
    build();
  }

  const BcUnit &unitFor(Unit *U) {
    auto It = Units.find(U);
    if (It != Units.end())
      return It->second;
    Compiler C(*U);
    return Units.emplace(U, C.take()).first->second;
  }

  void preloadFrame(const BcUnit &BC, const UnitInstance &UI,
                    std::vector<RtValue> &Frame) {
    Frame.assign(BC.NumSlots, RtValue());
    for (const auto &[Slot, V] : BC.ConstSlots)
      Frame[Slot] = V;
    for (const auto &[Val, Ref] : UI.Bindings) {
      uint32_t Slot = Val->valueNumber();
      if (Slot < BC.NumValues)
        Frame[Slot] = RtValue(Ref);
    }
  }

  void build() {
    for (const UnitInstance &UI : D.Instances) {
      const BcUnit &BC = unitFor(UI.U);
      if (UI.U->isProcess()) {
        BcProcState PS;
        PS.BC = &BC;
        PS.Inst = &UI;
        preloadFrame(BC, UI, PS.Frame);
        Procs.push_back(std::move(PS));
      } else {
        BcEntState ES;
        ES.BC = &BC;
        ES.Inst = &UI;
        preloadFrame(BC, UI, ES.Frame);
        ES.RegPrev.assign(BC.NumRegPrev, RtValue());
        ES.RegPrevValid.assign(BC.NumRegPrev, false);
        ES.DelPrev.assign(BC.NumDelPrev, RtValue());
        Ents.push_back(std::move(ES));
      }
    }
    // Entity static sensitivity comes from D.EntityWatchers (built at
    // elaboration of the optimised clone).
  }

  uint64_t driverId(const void *Instance, const Instruction *I) {
    return (reinterpret_cast<uintptr_t>(Instance) << 20) ^
           reinterpret_cast<uintptr_t>(I);
  }

  //===------------------------------------------------------------------===//
  // Function execution
  //===------------------------------------------------------------------===//

  RtValue callFunction(Unit *F, std::vector<RtValue> &Args) {
    if (F->isIntrinsic() || F->isDeclaration())
      return callIntrinsic(F, Args);
    const BcUnit &BC = unitFor(F);
    auto FR = FnPool.lease();
    std::vector<RtValue> &Frame = FR->Frame;
    std::vector<RtValue> &Memory = FR->Memory;
    Frame.assign(BC.NumSlots, RtValue());
    Memory.clear();
    for (const auto &[Slot, V] : BC.ConstSlots)
      Frame[Slot] = V;
    for (unsigned I = 0; I != F->inputs().size(); ++I)
      Frame[F->input(I)->valueNumber()] = std::move(Args[I]);
    uint32_t Pc = 0;
    uint64_t Fuel = 100000000ull;
    while (Fuel--) {
      const BcOp &Op = BC.Ops[Pc];
      switch (Op.C) {
      case BcOpc::Ret:
        return Op.A >= 0 ? std::move(Frame[Op.A]) : RtValue();
      case BcOpc::Jmp:
        Pc = Op.Jmp0;
        continue;
      case BcOpc::CondJmp:
        Pc = Frame[Op.A].isTruthy() ? Op.Jmp1 : Op.Jmp0;
        continue;
      case BcOpc::Copy:
        Frame[Op.Dst] = Frame[Op.A];
        break;
      case BcOpc::Pure:
        Frame[Op.Dst] = evalPureIdx(Op.IrOp, Frame.data(), Op.Ext.data(),
                                    Op.Ext.size(), Op.Imm, Op.Src);
        break;
      case BcOpc::VarOp:
        Memory.push_back(Frame[Op.A]);
        Frame[Op.Dst] = RtValue::makePointer(Memory.size() - 1);
        break;
      case BcOpc::LdOp:
        Frame[Op.Dst] = Memory[Frame[Op.A].pointer()];
        break;
      case BcOpc::StOp:
        Memory[Frame[Op.A].pointer()] = Frame[Op.B];
        break;
      case BcOpc::CallFn: {
        RtValue R = callFrameSlots(Op, Frame);
        if (Op.Dst >= 0)
          Frame[Op.Dst] = std::move(R);
        break;
      }
      default:
        assert(false && "illegal op in function");
        return RtValue();
      }
      ++Pc;
    }
    return RtValue();
  }

  /// Gathers a CallFn op's arguments from \p Frame into a pooled buffer
  /// and invokes the callee.
  RtValue callFrameSlots(const BcOp &Op, std::vector<RtValue> &Frame) {
    auto Lease = ArgPool.lease();
    std::vector<RtValue> &Args = *Lease;
    Args.clear();
    for (int32_t S : Op.Ext)
      Args.push_back(Frame[S]);
    return callFunction(Op.Src->callee(), Args);
  }

  RtValue callIntrinsic(Unit *F, const std::vector<RtValue> &Args) {
    const std::string &N = F->name();
    if (N == "llhd.assert") {
      if (!Args.empty() && !Args[0].isTruthy())
        ++Stats.AssertFailures;
      return RtValue();
    }
    if (N == "llhd.finish") {
      FinishRequested = true;
      return RtValue();
    }
    return defaultValue(F->returnType());
  }

  //===------------------------------------------------------------------===//
  // Process / entity execution
  //===------------------------------------------------------------------===//

  void runProcess(uint32_t PI) {
    BcProcState &PS = Procs[PI];
    if (PS.State == BcProcState::St::Halted)
      return;
    PS.State = BcProcState::St::Ready;
    ++Stats.ProcessRuns;
    const BcUnit &BC = *PS.BC;
    uint64_t Fuel = 100000000ull;
    while (Fuel--) {
      const BcOp &Op = BC.Ops[PS.Pc];
      switch (Op.C) {
      case BcOpc::Halt:
        PS.State = BcProcState::St::Halted;
        return;
      case BcOpc::Wait: {
        PS.Sensitivity.clear();
        ++PS.WakeGen;
        if (Op.A >= 0)
          Sched.scheduleWake(Now.advance(PS.Frame[Op.A].timeValue()),
                             {PI, PS.WakeGen});
        for (int32_t S : Op.Ext)
          PS.Sensitivity.push_back(
              D.Signals.canonical(PS.Frame[S].sigId()));
        PS.State = BcProcState::St::Waiting;
        PS.Pc = Op.Jmp0;
        return;
      }
      case BcOpc::Jmp:
        PS.Pc = Op.Jmp0;
        continue;
      case BcOpc::CondJmp:
        PS.Pc = PS.Frame[Op.A].isTruthy() ? Op.Jmp1 : Op.Jmp0;
        continue;
      case BcOpc::Copy:
        PS.Frame[Op.Dst] = PS.Frame[Op.A];
        break;
      case BcOpc::Prb:
        PS.Frame[Op.Dst] = D.Signals.read(PS.Frame[Op.A].sigRef());
        break;
      case BcOpc::Drv: {
        if (Op.Dd >= 0 && !PS.Frame[Op.Dd].isTruthy())
          break;
        Sched.scheduleUpdate(
            driveTarget(Now, PS.Frame[Op.Cc].timeValue()),
            {PS.Frame[Op.A].sigRef(), PS.Frame[Op.B],
             driverId(&PS, Op.Src)});
        Sched.countScheduled(1);
        break;
      }
      case BcOpc::Pure:
        PS.Frame[Op.Dst] =
            evalPureIdx(Op.IrOp, PS.Frame.data(), Op.Ext.data(),
                        Op.Ext.size(), Op.Imm, Op.Src);
        break;
      case BcOpc::VarOp:
        PS.Memory.push_back(PS.Frame[Op.A]);
        PS.Frame[Op.Dst] = RtValue::makePointer(PS.Memory.size() - 1);
        break;
      case BcOpc::LdOp:
        PS.Frame[Op.Dst] = PS.Memory[PS.Frame[Op.A].pointer()];
        break;
      case BcOpc::StOp:
        PS.Memory[PS.Frame[Op.A].pointer()] = PS.Frame[Op.B];
        break;
      case BcOpc::CallFn: {
        RtValue R = callFrameSlots(Op, PS.Frame);
        if (Op.Dst >= 0)
          PS.Frame[Op.Dst] = std::move(R);
        break;
      }
      default:
        assert(false && "illegal op in process");
        PS.State = BcProcState::St::Halted;
        return;
      }
      ++PS.Pc;
    }
    PS.State = BcProcState::St::Halted;
  }

  void evalEntity(uint32_t EI, bool Initial) {
    BcEntState &ES = Ents[EI];
    ++Stats.EntityEvals;
    const BcUnit &BC = *ES.BC;
    for (const BcOp &Op : BC.Ops) {
      switch (Op.C) {
      case BcOpc::Prb:
        ES.Frame[Op.Dst] = D.Signals.read(ES.Frame[Op.A].sigRef());
        break;
      case BcOpc::Drv: {
        if (Op.Dd >= 0 && !ES.Frame[Op.Dd].isTruthy())
          break;
        Sched.scheduleUpdate(
            driveTarget(Now, ES.Frame[Op.Cc].timeValue()),
            {ES.Frame[Op.A].sigRef(), ES.Frame[Op.B],
             driverId(&ES, Op.Src)});
        Sched.countScheduled(1);
        break;
      }
      case BcOpc::Pure:
        ES.Frame[Op.Dst] =
            evalPureIdx(Op.IrOp, ES.Frame.data(), Op.Ext.data(),
                        Op.Ext.size(), Op.Imm, Op.Src);
        break;
      case BcOpc::RegOp:
        evalReg(ES, Op, Initial);
        break;
      case BcOpc::DelOp: {
        RtValue Src = D.Signals.read(ES.Frame[Op.B].sigRef());
        RtValue &Prev = ES.DelPrev[Op.Imm];
        if (Initial || Prev != Src) {
          Prev = Src;
          Sched.scheduleUpdate(
              Now.advance(ES.Frame[Op.Cc].timeValue()),
              {ES.Frame[Op.A].sigRef(), Src, driverId(&ES, Op.Src)});
          Sched.countScheduled(1);
        }
        break;
      }
      default:
        assert(false && "illegal op in entity");
        break;
      }
    }
  }

  void evalReg(BcEntState &ES, const BcOp &Op, bool Initial) {
    const Instruction *I = Op.Src;
    SigRef Target = ES.Frame[Op.A].sigRef();
    for (unsigned TI = 0; TI != I->regTriggers().size(); ++TI) {
      const RegTrigger &T = I->regTriggers()[TI];
      // Operand indices are into the IR instruction; Ext holds slots for
      // operands 1..N in order.
      auto slot = [&](int OperandIdx) {
        return Op.Ext[OperandIdx - 1];
      };
      RtValue Cur = ES.Frame[slot(T.TriggerIdx)];
      uint32_t PrevIdx = Op.Imm + TI;
      bool HavePrev = ES.RegPrevValid[PrevIdx];
      RtValue Prev = HavePrev ? ES.RegPrev[PrevIdx] : Cur;
      ES.RegPrev[PrevIdx] = Cur;
      ES.RegPrevValid[PrevIdx] = true;

      bool CurT = Cur.isTruthy();
      bool PrevT = Prev.isTruthy();
      bool Fire = false;
      switch (T.Mode) {
      case RegMode::Rise: Fire = HavePrev && !PrevT && CurT; break;
      case RegMode::Fall: Fire = HavePrev && PrevT && !CurT; break;
      case RegMode::Both: Fire = HavePrev && PrevT != CurT; break;
      case RegMode::High: Fire = CurT; break;
      case RegMode::Low:  Fire = !CurT; break;
      }
      if (Initial && (T.Mode == RegMode::Rise || T.Mode == RegMode::Fall ||
                      T.Mode == RegMode::Both))
        Fire = false;
      if (!Fire)
        continue;
      if (T.CondIdx >= 0 && !ES.Frame[slot(T.CondIdx)].isTruthy())
        continue;
      Time Delay;
      if (T.DelayIdx >= 0)
        Delay = ES.Frame[slot(T.DelayIdx)].timeValue();
      Sched.scheduleUpdate(driveTarget(Now, Delay),
                           {Target, ES.Frame[slot(T.ValueIdx)],
                            driverId(&ES, I) + TI});
      Sched.countScheduled(1);
    }
  }

  //===------------------------------------------------------------------===//
  // EventLoop hooks
  //===------------------------------------------------------------------===//

  uint32_t numProcs() const { return Procs.size(); }
  uint32_t numEnts() const { return Ents.size(); }
  bool procWaiting(uint32_t PI) const {
    return Procs[PI].State == BcProcState::St::Waiting;
  }
  bool procHalted(uint32_t PI) const {
    return Procs[PI].State == BcProcState::St::Halted;
  }
  const std::vector<SignalId> &procSensitivity(uint32_t PI) const {
    return Procs[PI].Sensitivity;
  }
  uint64_t procWakeGen(uint32_t PI) const { return Procs[PI].WakeGen; }
  void procBumpWakeGen(uint32_t PI) { ++Procs[PI].WakeGen; }
  bool finishRequested() const { return FinishRequested; }

  SimStats run() {
    return runEventLoop(*this, D, Opts, Sched, Tr, Now, Stats);
  }
};

BlazeSim::BlazeSim(Module &M, const std::string &Top, BlazeOptions Opts)
    : P(std::make_unique<Impl>(M, Top, Opts)) {}

BlazeSim::BlazeSim(Module &M, const std::string &Top)
    : BlazeSim(M, Top, BlazeOptions()) {}

BlazeSim::~BlazeSim() = default;

bool BlazeSim::valid() const { return P->Err.empty(); }
const std::string &BlazeSim::error() const { return P->Err; }
SimStats BlazeSim::run() { return P->run(); }
const Trace &BlazeSim::trace() const { return P->Tr; }
const SignalTable &BlazeSim::signals() const { return P->D.Signals; }
const Design &BlazeSim::design() const { return P->D; }
