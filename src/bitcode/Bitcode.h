//===- bitcode/Bitcode.h - Binary on-disk representation --------*- C++ -*-===//
//
// The binary "bitcode" representation of LLHD modules. The paper lists
// this as planned and estimates its size (Table 4, "estimated"); this
// implementation makes it real: varint-coded instructions with interned
// strings and types, so Table 4 reports measured bitcode sizes.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_BITCODE_BITCODE_H
#define LLHD_BITCODE_BITCODE_H

#include "ir/Module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llhd {

/// Serialises \p M into a byte buffer.
std::vector<uint8_t> writeBitcode(const Module &M);

/// Parses bitcode into \p M (which should be empty). Returns false and
/// sets \p Error on malformed input.
bool readBitcode(const std::vector<uint8_t> &Bytes, Module &M,
                 std::string &Error);

} // namespace llhd

#endif // LLHD_BITCODE_BITCODE_H
