//===- bitcode/Bitcode.cpp - Binary on-disk representation ----------------------===//

#include "bitcode/Bitcode.h"
#include "bitcode/Stream.h"

#include <map>

using namespace llhd;
using bc::putStr;
using bc::putVar;
using bc::Reader;

namespace {

constexpr uint32_t Magic = 0x4448'4c4c; // "LLHD".
constexpr uint32_t Version = 1;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

void putType(std::vector<uint8_t> &Out, Type *T) {
  putVar(Out, static_cast<uint64_t>(T->kind()));
  switch (T->kind()) {
  case Type::Kind::Int:
    putVar(Out, cast<IntType>(T)->width());
    break;
  case Type::Kind::Enum:
    putVar(Out, cast<EnumType>(T)->numValues());
    break;
  case Type::Kind::Logic:
    putVar(Out, cast<LogicType>(T)->width());
    break;
  case Type::Kind::Pointer:
    putType(Out, cast<PointerType>(T)->pointee());
    break;
  case Type::Kind::Signal:
    putType(Out, cast<SignalType>(T)->inner());
    break;
  case Type::Kind::Array: {
    auto *AT = cast<ArrayType>(T);
    putVar(Out, AT->length());
    putType(Out, AT->element());
    break;
  }
  case Type::Kind::Struct: {
    auto *ST = cast<StructType>(T);
    putVar(Out, ST->numFields());
    for (Type *F : ST->fields())
      putType(Out, F);
    break;
  }
  default:
    break;
  }
}

Type *getType(Reader &R, Context &Ctx) {
  auto K = static_cast<Type::Kind>(R.var());
  switch (K) {
  case Type::Kind::Void:    return Ctx.voidType();
  case Type::Kind::Time:    return Ctx.timeType();
  case Type::Kind::Int:     return Ctx.intType(R.var());
  case Type::Kind::Enum:    return Ctx.enumType(R.var());
  case Type::Kind::Logic:   return Ctx.logicType(R.var());
  case Type::Kind::Pointer: return Ctx.pointerType(getType(R, Ctx));
  case Type::Kind::Signal:  return Ctx.signalType(getType(R, Ctx));
  case Type::Kind::Array: {
    unsigned N = R.var();
    return Ctx.arrayType(N, getType(R, Ctx));
  }
  case Type::Kind::Struct: {
    unsigned N = R.var();
    std::vector<Type *> Fs;
    for (unsigned I = 0; I != N && !R.Failed; ++I)
      Fs.push_back(getType(R, Ctx));
    return Ctx.structType(std::move(Fs));
  }
  }
  R.Failed = true;
  return Ctx.voidType();
}

} // namespace

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::vector<uint8_t> llhd::writeBitcode(const Module &M) {
  std::vector<uint8_t> Out;
  putVar(Out, Magic);
  putVar(Out, Version);

  // Unit name table (for callee references).
  std::map<const Unit *, uint32_t> UnitIdx;
  putVar(Out, M.units().size());
  for (const auto &U : M.units()) {
    UnitIdx[U.get()] = UnitIdx.size();
    putStr(Out, U->name());
  }

  // Header section: kinds and signatures of every unit, so that callee
  // references in the body section resolve in one pass.
  for (const auto &UP : M.units()) {
    const Unit &U = *UP;
    putVar(Out, static_cast<uint64_t>(U.kind()));
    putVar(Out, U.isDeclaration());
    putVar(Out, U.inputs().size());
    for (const Argument *A : U.inputs()) {
      putType(Out, A->type());
      putStr(Out, A->name());
    }
    putVar(Out, U.outputs().size());
    for (const Argument *A : U.outputs()) {
      putType(Out, A->type());
      putStr(Out, A->name());
    }
    putType(Out, U.returnType());
  }

  // Body section.
  for (const auto &UP : M.units()) {
    const Unit &U = *UP;
    if (U.isDeclaration())
      continue;

    // Value numbering: arguments, then instruction results in order.
    std::map<const Value *, uint32_t> ValIdx;
    for (const Argument *A : U.inputs())
      ValIdx[A] = ValIdx.size();
    for (const Argument *A : U.outputs())
      ValIdx[A] = ValIdx.size();
    std::map<const BasicBlock *, uint32_t> BlockIdx;
    for (const BasicBlock *BB : U.blocks()) {
      BlockIdx[BB] = BlockIdx.size();
      for (const Instruction *I : BB->insts())
        ValIdx[I] = ValIdx.size();
    }

    putVar(Out, U.blocks().size());
    for (const BasicBlock *BB : U.blocks()) {
      putStr(Out, BB->name());
      putVar(Out, BB->size());
      for (const Instruction *I : BB->insts()) {
        putVar(Out, static_cast<uint64_t>(I->opcode()));
        putType(Out, I->type());
        putStr(Out, I->name());
        putVar(Out, I->immediate());
        putVar(Out, I->numInputs());
        putVar(Out, I->callee() ? UnitIdx[I->callee()] + 1 : 0);
        putVar(Out, I->numOperands());
        for (unsigned J = 0; J != I->numOperands(); ++J) {
          const Value *Op = I->operand(J);
          if (const auto *BB2 = dyn_cast<BasicBlock>(Op)) {
            Out.push_back(1);
            putVar(Out, BlockIdx[BB2]);
          } else {
            Out.push_back(0);
            putVar(Out, ValIdx[Op]);
          }
        }
        // Constant payload.
        if (I->opcode() == Opcode::Const) {
          if (I->type()->isInt()) {
            putVar(Out, I->intValue().numWords());
            for (unsigned W = 0; W != I->intValue().numWords(); ++W)
              putVar(Out, I->intValue().word(W));
          } else if (I->type()->isTime()) {
            putVar(Out, I->timeValue().Fs);
            putVar(Out, I->timeValue().Delta);
            putVar(Out, I->timeValue().Eps);
          } else if (I->type()->isLogic()) {
            putStr(Out, I->logicValue().toString());
          } else if (I->type()->isEnum()) {
            putVar(Out, I->enumValue());
          }
        }
        // Reg triggers.
        if (I->opcode() == Opcode::Reg) {
          putVar(Out, I->regTriggers().size());
          for (const RegTrigger &T : I->regTriggers()) {
            putVar(Out, static_cast<uint64_t>(T.Mode));
            putVar(Out, T.ValueIdx);
            putVar(Out, T.TriggerIdx);
            putVar(Out, T.DelayIdx + 1);
            putVar(Out, T.CondIdx + 1);
          }
        }
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

bool llhd::readBitcode(const std::vector<uint8_t> &Bytes, Module &M,
                       std::string &Error) {
  Reader R{Bytes};
  Context &Ctx = M.context();
  if (R.var() != Magic || R.var() != Version) {
    Error = "bad magic or version";
    return false;
  }
  uint64_t NumUnits = R.var();
  std::vector<std::string> Names;
  for (uint64_t I = 0; I != NumUnits && !R.Failed; ++I)
    Names.push_back(R.str());
  if (R.Failed) {
    Error = "truncated unit table";
    return false;
  }

  // Header pass: create every unit with its signature.
  std::vector<Unit *> Units;
  for (uint64_t UI = 0; UI != NumUnits && !R.Failed; ++UI) {
    auto K = static_cast<Unit::Kind>(R.var());
    bool Declaration = R.var();
    Unit *U = Declaration
                  ? M.declareUnit(K, Names[UI])
                  : (K == Unit::Kind::Function ? M.createFunction(Names[UI])
                     : K == Unit::Kind::Process
                         ? M.createProcess(Names[UI])
                         : M.createEntity(Names[UI]));
    Units.push_back(U);
    uint64_t NIn = R.var();
    for (uint64_t I = 0; I != NIn && !R.Failed; ++I) {
      Type *T = getType(R, Ctx);
      U->addInput(T, R.str());
    }
    uint64_t NOut = R.var();
    for (uint64_t I = 0; I != NOut && !R.Failed; ++I) {
      Type *T = getType(R, Ctx);
      U->addOutput(T, R.str());
    }
    U->setReturnType(getType(R, Ctx));
  }
  if (R.Failed) {
    Error = "truncated unit headers";
    return false;
  }

  // Body pass.
  for (uint64_t UI = 0; UI != NumUnits && !R.Failed; ++UI) {
    Unit *U = Units[UI];
    if (U->isDeclaration())
      continue;

    std::vector<Value *> ValTab;
    for (Argument *A : U->inputs())
      ValTab.push_back(A);
    for (Argument *A : U->outputs())
      ValTab.push_back(A);

    uint64_t NumBlocks = R.var();
    std::vector<BasicBlock *> Blocks;
    struct PendingOp {
      Instruction *I;
      unsigned OpIdx;
      bool IsBlock;
      uint64_t Idx;
    };
    std::vector<PendingOp> Pending;
    for (uint64_t BI = 0; BI != NumBlocks && !R.Failed; ++BI) {
      BasicBlock *BB = U->createBlock(R.str());
      Blocks.push_back(BB);
      uint64_t NumInsts = R.var();
      for (uint64_t II = 0; II != NumInsts && !R.Failed; ++II) {
        auto Op = static_cast<Opcode>(R.var());
        Type *Ty = getType(R, Ctx);
        std::string Name = R.str();
        auto *I = new Instruction(Op, Ty, Name);
        I->setImmediate(R.var());
        I->setNumInputs(R.var());
        uint64_t CalleeIdx = R.var();
        if (CalleeIdx)
          I->setCallee(Units.size() >= CalleeIdx ? Units[CalleeIdx - 1]
                                                 : nullptr);
        uint64_t NumOps = R.var();
        for (uint64_t OI = 0; OI != NumOps && !R.Failed; ++OI) {
          if (R.Pos >= Bytes.size()) {
            R.Failed = true;
            break;
          }
          bool IsBlock = Bytes[R.Pos++] == 1;
          uint64_t Idx = R.var();
          // Operands may reference later instructions (phis) or blocks:
          // append a placeholder and patch afterwards.
          I->appendOperand(nullptr);
          Pending.push_back({I, static_cast<unsigned>(OI), IsBlock, Idx});
        }
        if (Op == Opcode::Const) {
          if (Ty->isInt()) {
            uint64_t NW = R.var();
            std::vector<uint64_t> Ws;
            for (uint64_t W = 0; W != NW && !R.Failed; ++W)
              Ws.push_back(R.var());
            I->setIntValue(IntValue(cast<IntType>(Ty)->width(), Ws));
          } else if (Ty->isTime()) {
            Time T;
            T.Fs = R.var();
            T.Delta = R.var();
            T.Eps = R.var();
            I->setTimeValue(T);
          } else if (Ty->isLogic()) {
            I->setLogicValue(LogicVec::fromString(R.str()));
          } else if (Ty->isEnum()) {
            I->setEnumValue(R.var());
          }
        }
        if (Op == Opcode::Reg) {
          uint64_t NT = R.var();
          for (uint64_t T = 0; T != NT && !R.Failed; ++T) {
            RegTrigger Trig;
            Trig.Mode = static_cast<RegMode>(R.var());
            Trig.ValueIdx = R.var();
            Trig.TriggerIdx = R.var();
            Trig.DelayIdx = static_cast<int>(R.var()) - 1;
            Trig.CondIdx = static_cast<int>(R.var()) - 1;
            I->regTriggers().push_back(Trig);
          }
        }
        BB->append(I);
        ValTab.push_back(I);
      }
    }
    for (const PendingOp &P : Pending) {
      if (P.IsBlock) {
        if (P.Idx >= Blocks.size()) {
          Error = "bad block reference";
          return false;
        }
        P.I->setOperand(P.OpIdx, Blocks[P.Idx]);
      } else {
        if (P.Idx >= ValTab.size()) {
          Error = "bad value reference";
          return false;
        }
        P.I->setOperand(P.OpIdx, ValTab[P.Idx]);
      }
    }
  }
  if (R.Failed) {
    Error = "truncated bitcode";
    return false;
  }
  return true;
}
