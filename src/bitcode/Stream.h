//===- bitcode/Stream.h - Primitive byte-stream encoding --------*- C++ -*-===//
//
// The LEB128/length-prefixed primitives shared by every binary on-disk
// format in the project: the IR bitcode (bitcode/Bitcode.cpp) and the
// simulation checkpoint format (sim/Checkpoint.cpp). Writers append to a
// std::vector<uint8_t>; the Reader cursors over one and latches the first
// decode failure in `Failed` so callers can check once at the end.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_BITCODE_STREAM_H
#define LLHD_BITCODE_STREAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace llhd {
namespace bc {

/// Appends V as a LEB128 varint.
inline void putVar(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

/// Appends S as a varint length followed by the raw bytes.
inline void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putVar(Out, S.size());
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Decoding cursor over a byte buffer. Any truncated or malformed read
/// sets Failed and returns a zero value; subsequent reads keep failing,
/// so a single check after a batch of reads suffices.
struct Reader {
  const std::vector<uint8_t> &In;
  size_t Pos = 0;
  bool Failed = false;

  uint64_t var() {
    uint64_t V = 0;
    unsigned Shift = 0;
    while (Pos < In.size()) {
      uint8_t B = In[Pos++];
      V |= uint64_t(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
      Shift += 7;
      if (Shift > 63)
        break;
    }
    Failed = true;
    return 0;
  }

  std::string str() {
    uint64_t N = var();
    if (Pos + N > In.size()) {
      Failed = true;
      return "";
    }
    std::string S(In.begin() + Pos, In.begin() + Pos + N);
    Pos += N;
    return S;
  }
};

} // namespace bc
} // namespace llhd

#endif // LLHD_BITCODE_STREAM_H
