//===- lint/Diagnostics.cpp - Lint diagnostics infrastructure ------------===//

#include "lint/Diagnostics.h"

#include <sstream>

using namespace llhd;

const char *llhd::severityName(Severity S) {
  switch (S) {
  case Severity::Ignore:
    return "ignore";
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Check registry
//===----------------------------------------------------------------------===//

const std::vector<CheckInfo> &llhd::allChecks() {
  static const std::vector<CheckInfo> Checks = {
      {"comb-loop", Severity::Error,
       "zero-delay combinational loop through process/entity drives"},
      {"multi-drive", Severity::Error,
       "multiple instances drive overlapping parts of an unresolved signal"},
      {"undriven", Severity::Warning,
       "signal is read or observed but never driven"},
      {"never-read", Severity::Warning,
       "signal is driven but never read or observed"},
      {"stale-sense", Severity::Warning,
       "process reads a signal missing from its wait/observe set"},
      {"dead-wait", Severity::Warning,
       "wait observes nothing and has no timeout: the process can never "
       "resume"},
      {"unreachable", Severity::Warning,
       "basic block is unreachable from the unit entry"},
  };
  return Checks;
}

const CheckInfo *llhd::checkById(const std::string &Id) {
  for (const CheckInfo &C : allChecks())
    if (Id == C.Id)
      return &C;
  return nullptr;
}

const char *llhd::waiverFileFormatHelp() {
  return "one waiver per line: '<check-id|*> <location-glob>'; '#' starts a "
         "comment; '*' in a glob matches any run of characters";
}

//===----------------------------------------------------------------------===//
// Glob matching
//===----------------------------------------------------------------------===//

bool llhd::globMatch(const std::string &Glob, const std::string &Text) {
  // Iterative *-wildcard match with backtracking to the last star.
  size_t G = 0, T = 0, StarG = std::string::npos, StarT = 0;
  while (T < Text.size()) {
    if (G < Glob.size() && (Glob[G] == Text[T])) {
      ++G, ++T;
    } else if (G < Glob.size() && Glob[G] == '*') {
      StarG = G++;
      StarT = T;
    } else if (StarG != std::string::npos) {
      G = StarG + 1;
      T = ++StarT;
    } else {
      return false;
    }
  }
  while (G < Glob.size() && Glob[G] == '*')
    ++G;
  return G == Glob.size();
}

//===----------------------------------------------------------------------===//
// DiagnosticEngine
//===----------------------------------------------------------------------===//

bool DiagnosticEngine::addWaivers(const std::string &Text,
                                  std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line.erase(Hash);
    std::istringstream LS(Line);
    std::string Check, Glob, Extra;
    if (!(LS >> Check))
      continue; // Blank or comment-only line.
    if (!(LS >> Glob) || (LS >> Extra)) {
      Error = "waiver line " + std::to_string(LineNo) +
              ": expected '<check-id|*> <location-glob>'";
      return false;
    }
    if (Check != "*" && !checkById(Check)) {
      Error = "waiver line " + std::to_string(LineNo) + ": unknown check '" +
              Check + "'";
      return false;
    }
    Waivers.push_back({Check, Glob, false});
  }
  return true;
}

Severity DiagnosticEngine::effectiveSeverity(const std::string &CheckId,
                                             Severity Def) const {
  Severity S = Def;
  auto It = Opts.SeverityOverrides.find(CheckId);
  if (It != Opts.SeverityOverrides.end())
    S = It->second;
  if (S == Severity::Warning && Opts.WarningsAsErrors)
    S = Severity::Error;
  return S;
}

bool DiagnosticEngine::waived(const Diagnostic &D) {
  bool Hit = false;
  // Mark every matching waiver used, not just the first: unused-waiver
  // reporting must not depend on waiver-file order.
  for (Waiver &W : Waivers) {
    if (W.CheckId != "*" && W.CheckId != D.CheckId)
      continue;
    if (!globMatch(W.Glob, D.Location))
      continue;
    W.Used = true;
    Hit = true;
  }
  return Hit;
}

Severity DiagnosticEngine::report(Diagnostic D) {
  const CheckInfo *Info = checkById(D.CheckId);
  D.Sev = effectiveSeverity(D.CheckId, Info ? Info->DefaultSev : D.Sev);
  if (D.Sev == Severity::Ignore || waived(D))
    return Severity::Ignore;
  if (D.Sev == Severity::Error)
    ++NumErrors;
  else if (D.Sev == Severity::Warning)
    ++NumWarnings;
  Diags.push_back(std::move(D));
  return Diags.back().Sev;
}

std::vector<std::string> DiagnosticEngine::unusedWaivers() const {
  std::vector<std::string> Out;
  for (const Waiver &W : Waivers)
    if (!W.Used)
      Out.push_back(W.CheckId + " " + W.Glob);
  return Out;
}

std::string DiagnosticEngine::render() const {
  if (Diags.empty())
    return "";
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << severityName(D.Sev) << ": [" << D.CheckId << "]";
    if (!D.Location.empty())
      OS << " " << D.Location << ":";
    OS << " " << D.Message << "\n";
    for (const std::string &Note : D.Notes)
      OS << "  note: " << Note << "\n";
  }
  auto plural = [](unsigned N, const char *What) {
    return std::to_string(N) + " " + What + (N == 1 ? "" : "s");
  };
  if (NumErrors && NumWarnings)
    OS << plural(NumErrors, "error") << ", " << plural(NumWarnings, "warning")
       << " generated.\n";
  else if (NumErrors)
    OS << plural(NumErrors, "error") << " generated.\n";
  else if (NumWarnings)
    OS << plural(NumWarnings, "warning") << " generated.\n";
  return OS.str();
}
