//===- lint/Lint.h - Static design checks -----------------------*- C++ -*-===//
//
// The llhd-lint check suite. Two granularities share one diagnostic
// engine:
//
//  - lintUnit: IR-shape checks on a single unit (unreachable blocks,
//    dead waits). Needs no elaboration, so it runs anywhere a pass
//    runs — including mid-pipeline in llhd-opt (`-p 'lint,...'`).
//
//  - lintDesign: whole-design checks over the elaborated connectivity
//    graph (combinational loops, driver conflicts, undriven/unread
//    signals, stale sensitivity), plus the unit checks over every
//    instantiated unit. This is what tools/llhd-lint and
//    `llhd-sim --lint` run.
//
// The check catalog and severity/waiver model live in Diagnostics.h;
// DESIGN.md ("Static design analysis & diagnostics") documents both.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_LINT_LINT_H
#define LLHD_LINT_LINT_H

#include "lint/Diagnostics.h"

namespace llhd {

class Design;
class DesignAnalysisManager;
class Unit;
class UnitAnalysisManager;

/// Runs the unit-granular checks (unreachable, dead-wait) on \p U.
void lintUnit(Unit &U, UnitAnalysisManager &AM, DiagnosticEngine &DE);

/// Runs every check on the elaborated design: the connectivity-graph
/// checks plus lintUnit over each distinct instantiated unit.
void lintDesign(const Design &D, DesignAnalysisManager &AM,
                DiagnosticEngine &DE);

} // namespace llhd

#endif // LLHD_LINT_LINT_H
