//===- lint/Diagnostics.h - Lint diagnostics infrastructure -----*- C++ -*-===//
//
// Diagnostics for the static design checks (src/lint/): severity levels,
// stable check IDs, instance-path locations, -Werror-style promotion and
// a waiver mechanism. The same engine backs tools/llhd-lint, the
// `llhd-sim --lint` gate and the `lint` pass in llhd-opt pipelines, so a
// finding renders identically everywhere:
//
//   error: [comb-loop] /top/inv: combinational loop: top/x -> top/x
//     note: drive of 'top/x' depends on 'top/x' with zero delay
//
// Check IDs are stable API: waiver files, -Wno-<id> flags and the
// examples/lint expected-diagnostic annotations all key on them.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_LINT_DIAGNOSTICS_H
#define LLHD_LINT_DIAGNOSTICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llhd {

/// Diagnostic severity, after overrides and promotion.
enum class Severity : uint8_t {
  Ignore,  ///< Suppressed (per-check override or waiver).
  Note,    ///< Attached context, never counted.
  Warning, ///< Counted; does not fail the run unless promoted.
  Error,   ///< Counted; fails the run.
};

const char *severityName(Severity S);

/// One registered check.
struct CheckInfo {
  const char *Id;          ///< Stable kebab-case ID, e.g. "comb-loop".
  Severity DefaultSev;     ///< Severity before overrides.
  const char *Description; ///< One-line summary for --list-checks.
};

/// All registered checks, in stable (documentation) order.
const std::vector<CheckInfo> &allChecks();

/// Registry lookup; null for unknown IDs.
const CheckInfo *checkById(const std::string &Id);

/// One finding.
struct Diagnostic {
  std::string CheckId;
  Severity Sev = Severity::Warning;
  /// Hierarchical location: an instance path ("/top/cpu/alu"), a signal
  /// name, or a unit name ("@proc") — whatever identifies the finding's
  /// subject most precisely. May be empty for design-wide findings.
  std::string Location;
  std::string Message;
  /// Attached notes (cycle chains, cross-references, involved drives).
  std::vector<std::string> Notes;
};

/// A waiver suppresses matching findings. Waiver files hold one waiver
/// per line, `<check-id|*> <location-glob>`, with `#` comments:
///
///   # The arbiter's cross-coupled latch is intentional.
///   comb-loop /top/arbiter/*
///
const char *waiverFileFormatHelp();

/// Collects, filters and renders diagnostics for one lint run.
class DiagnosticEngine {
public:
  struct Options {
    /// Promote warnings to errors (-Werror / --lint=error).
    bool WarningsAsErrors = false;
    /// Per-check severity overrides (-Wno-<id> maps to Ignore).
    std::map<std::string, Severity> SeverityOverrides;
  };

  DiagnosticEngine() = default;
  explicit DiagnosticEngine(Options O) : Opts(std::move(O)) {}

  Options &options() { return Opts; }

  /// Parses waiver-file text; returns false and sets \p Error on a
  /// malformed line (unknown check ID, missing field).
  bool addWaivers(const std::string &Text, std::string &Error);

  /// Files \p D under the check's effective severity. Waived or
  /// Ignore-severity findings are dropped (waivers are marked used).
  /// Returns the effective severity.
  Severity report(Diagnostic D);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned numErrors() const { return NumErrors; }
  unsigned numWarnings() const { return NumWarnings; }
  bool failed() const { return NumErrors != 0; }

  /// Waivers that never matched a finding (stale waivers are findings
  /// too: they hide nothing and rot).
  std::vector<std::string> unusedWaivers() const;

  /// Renders all findings plus a trailing summary line, e.g.
  /// "2 errors, 1 warning generated."; empty string when clean.
  std::string render() const;

private:
  struct Waiver {
    std::string CheckId; ///< "*" matches every check.
    std::string Glob;
    bool Used = false;
  };

  Severity effectiveSeverity(const std::string &CheckId, Severity Def) const;
  bool waived(const Diagnostic &D);

  Options Opts;
  std::vector<Waiver> Waivers;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

/// Glob matching for waiver locations: `*` matches any run of
/// characters (including `/`), everything else is literal.
bool globMatch(const std::string &Glob, const std::string &Text);

} // namespace llhd

#endif // LLHD_LINT_DIAGNOSTICS_H
