//===- lint/Lint.cpp - Static design checks ------------------------------===//

#include "lint/Lint.h"
#include "analysis/AnalysisManager.h"
#include "analysis/Connectivity.h"
#include "sim/Design.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace llhd;

//===----------------------------------------------------------------------===//
// Unit-granular checks
//===----------------------------------------------------------------------===//

void llhd::lintUnit(Unit &U, UnitAnalysisManager &AM, DiagnosticEngine &DE) {
  if (!U.hasBody())
    return;

  if (U.isControlFlow()) {
    const CfgInfo &CFG = AM.get<CfgAnalysis>(U);
    for (BasicBlock *BB : CFG.unreachable()) {
      Diagnostic D;
      D.CheckId = "unreachable";
      D.Location = "@" + U.name();
      D.Message = "block '" + BB->name() + "' is unreachable from the entry";
      DE.report(std::move(D));
    }
  }

  for (BasicBlock *BB : U.blocks()) {
    Instruction *T = BB->terminator();
    if (!T || T->opcode() != Opcode::Wait)
      continue;
    bool HasSignal = false, HasTimeout = false;
    for (unsigned J = 1; J != T->numOperands(); ++J) {
      if (T->operand(J)->type()->isTime())
        HasTimeout = true;
      else
        HasSignal = true;
    }
    if (HasSignal || HasTimeout)
      continue;
    Diagnostic D;
    D.CheckId = "dead-wait";
    D.Location = "@" + U.name();
    D.Message = "wait in block '" + BB->name() +
                "' observes no signals and has no timeout: the process "
                "suspends forever";
    DE.report(std::move(D));
  }
}

//===----------------------------------------------------------------------===//
// Design-level checks
//===----------------------------------------------------------------------===//

namespace {

std::string sigName(const Design &D, SignalId S) {
  return D.Signals.name(S);
}

std::string instName(const Design &D, const Connectivity::Node &N) {
  return "/" + D.Instances[N.Instance].HierName;
}

/// Canonical signals bound to a port of a root instance (hierarchy name
/// without a '/'). Those are the design's external interface: the
/// harness drives the inputs and observes the outputs, so undriven /
/// never-read do not apply.
std::set<SignalId> topPortSignals(const Design &D) {
  std::set<SignalId> Ports;
  for (const UnitInstance &UI : D.Instances) {
    if (UI.HierName.find('/') != std::string::npos)
      continue;
    for (const auto &[V, Ref] : UI.Bindings)
      if (isa<Argument>(V))
        Ports.insert(D.Signals.canonical(Ref.Sig));
  }
  return Ports;
}

//===----------------------------------------------------------------------===//
// comb-loop: Tarjan SCC over zero-delay wake->drive edges
//===----------------------------------------------------------------------===//

struct LoopEdge {
  SignalId From, To;
  uint32_t Node; ///< Driving instance.
  const Connectivity::Drive *Drive;
};

class CombLoopCheck {
public:
  CombLoopCheck(const Design &D, const Connectivity &C, DiagnosticEngine &DE)
      : D(D), C(C), DE(DE) {}

  void run() {
    collectEdges();
    tarjan();
  }

private:
  void collectEdges() {
    for (uint32_t NI = 0; NI != C.Nodes.size(); ++NI) {
      for (const Connectivity::Drive &Dr : C.Nodes[NI].Drives) {
        // Physical delays and edge-triggered storage break same-instant
        // cycles; Unknown delays may be zero and stay in the graph.
        if (Dr.Sequential || Dr.Delay == DriveDelay::Physical ||
            Dr.Sig == InvalidSignal)
          continue;
        for (const SigRef &R : Dr.WakeDepRefs) {
          SignalId From = D.Signals.canonical(R.Sig);
          // A self-dependence is only a loop when the read range and the
          // driven range share storage (x[0] <= f(x[1]) is acyclic).
          if (From == Dr.Sig && !sigRefsOverlap(R, Dr.Ref))
            continue;
          size_t EI = Edges.size();
          Edges.push_back({From, Dr.Sig, NI, &Dr});
          Out[From].push_back(EI);
          touch(From);
          touch(Dr.Sig);
        }
      }
    }
  }

  void touch(SignalId S) {
    if (!VertIdx.count(S)) {
      VertIdx[S] = Verts.size();
      Verts.push_back(S);
    }
  }

  // Iterative Tarjan SCC over the touched signals.
  void tarjan() {
    unsigned N = Verts.size();
    Index.assign(N, ~0u);
    Low.assign(N, 0);
    OnStack.assign(N, false);
    for (unsigned V = 0; V != N; ++V)
      if (Index[V] == ~0u)
        strongConnect(V);
  }

  void strongConnect(unsigned Root) {
    struct Frame {
      unsigned V;
      size_t NextEdge;
    };
    std::vector<Frame> Work{{Root, 0}};
    while (!Work.empty()) {
      Frame &F = Work.back();
      unsigned V = F.V;
      if (F.NextEdge == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      bool Descended = false;
      auto It = Out.find(Verts[V]);
      if (It != Out.end()) {
        while (F.NextEdge != It->second.size()) {
          unsigned W = VertIdx.at(Edges[It->second[F.NextEdge]].To);
          ++F.NextEdge;
          if (Index[W] == ~0u) {
            Work.push_back({W, 0});
            Descended = true;
            break;
          }
          if (OnStack[W])
            Low[V] = std::min(Low[V], Index[W]);
        }
      }
      if (Descended)
        continue;
      if (Low[V] == Index[V]) {
        std::vector<SignalId> SCC;
        unsigned W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SCC.push_back(Verts[W]);
        } while (W != V);
        reportSCC(SCC);
      }
      Work.pop_back();
      if (!Work.empty()) {
        unsigned P = Work.back().V;
        Low[P] = std::min(Low[P], Low[V]);
      }
    }
  }

  void reportSCC(std::vector<SignalId> &SCC) {
    std::set<SignalId> Members(SCC.begin(), SCC.end());
    // Collect the edges internal to this SCC.
    std::vector<size_t> Internal;
    for (size_t EI = 0; EI != Edges.size(); ++EI)
      if (Members.count(Edges[EI].From) && Members.count(Edges[EI].To))
        Internal.push_back(EI);
    if (SCC.size() == 1) {
      bool SelfLoop = false;
      for (size_t EI : Internal)
        SelfLoop |= Edges[EI].From == Edges[EI].To;
      if (!SelfLoop)
        return;
    }
    if (Internal.empty())
      return;

    // Reconstruct one concrete cycle through the SCC: BFS a parent tree
    // from the smallest member, then close it with an edge back to the
    // start.
    SignalId Start = *Members.begin();
    std::map<SignalId, size_t> ParentEdge;
    std::deque<SignalId> Queue{Start};
    std::set<SignalId> Seen{Start};
    while (!Queue.empty()) {
      SignalId Cur = Queue.front();
      Queue.pop_front();
      for (size_t EI : Internal) {
        if (Edges[EI].From != Cur || Seen.count(Edges[EI].To))
          continue;
        Seen.insert(Edges[EI].To);
        ParentEdge[Edges[EI].To] = EI;
        Queue.push_back(Edges[EI].To);
      }
    }
    size_t Closing = Internal.front();
    for (size_t EI : Internal)
      if (Edges[EI].To == Start &&
          (Edges[EI].From == Start || ParentEdge.count(Edges[EI].From))) {
        Closing = EI;
        break;
      }
    std::vector<size_t> Chain{Closing};
    SignalId Cur = Edges[Closing].From;
    while (Cur != Start) {
      size_t EI = ParentEdge.at(Cur);
      Chain.push_back(EI);
      Cur = Edges[EI].From;
    }
    std::reverse(Chain.begin(), Chain.end());

    Diagnostic Diag;
    Diag.CheckId = "comb-loop";
    Diag.Location = instName(D, C.Nodes[Edges[Chain.front()].Node]);
    std::string Path = sigName(D, Start);
    for (size_t EI : Chain)
      Path += " -> " + sigName(D, Edges[EI].To);
    Diag.Message = "combinational loop: " + Path;
    for (size_t EI : Chain) {
      const LoopEdge &E = Edges[EI];
      Diag.Notes.push_back(
          "'" + signalRefName(D, E.Drive->Ref) + "' is driven with " +
          driveDelayName(E.Drive->Delay) + " delay by " +
          instName(D, C.Nodes[E.Node]) + ", depending on '" +
          sigName(D, E.From) + "'");
    }
    Diag.Notes.push_back("at runtime this oscillates: llhd-sim stops after "
                         "--max-deltas delta cycles with exit code 83");
    DE.report(std::move(Diag));
  }

  const Design &D;
  const Connectivity &C;
  DiagnosticEngine &DE;
  std::vector<LoopEdge> Edges;
  std::map<SignalId, std::vector<size_t>> Out;
  std::map<SignalId, unsigned> VertIdx;
  std::vector<SignalId> Verts;
  std::vector<unsigned> Index, Low;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;
};

//===----------------------------------------------------------------------===//
// multi-drive
//===----------------------------------------------------------------------===//

void checkMultiDrive(const Design &D, const Connectivity &C,
                     DiagnosticEngine &DE) {
  struct DriverRef {
    uint32_t Node;
    SigRef Ref;
  };
  std::map<SignalId, std::vector<DriverRef>> Drivers;
  for (uint32_t NI = 0; NI != C.Nodes.size(); ++NI) {
    std::set<SigRef> Seen;
    for (const Connectivity::Drive &Dr : C.Nodes[NI].Drives) {
      if (Dr.Sig == InvalidSignal || !Seen.insert(Dr.Ref).second)
        continue;
      Drivers[Dr.Sig].push_back({NI, Dr.Ref});
    }
  }
  for (auto &[Sig, Refs] : Drivers) {
    bool Logic = D.Signals.type(Sig)->isLogic();
    std::set<uint32_t> Conflicting;
    for (size_t I = 0; I != Refs.size(); ++I) {
      for (size_t J = I + 1; J != Refs.size(); ++J) {
        if (Refs[I].Node == Refs[J].Node)
          continue; // Last-write-wins within one instance is defined.
        if (!sigRefsOverlap(Refs[I].Ref, Refs[J].Ref))
          continue;
        // Whole-signal drives of nine-valued signals go through IEEE
        // 1164 multi-driver resolution; everything else conflicts.
        if (Logic && Refs[I].Ref.wholeSignal() && Refs[J].Ref.wholeSignal())
          continue;
        Conflicting.insert(Refs[I].Node);
        Conflicting.insert(Refs[J].Node);
      }
    }
    if (Conflicting.empty())
      continue;
    Diagnostic Diag;
    Diag.CheckId = "multi-drive";
    Diag.Location = sigName(D, Sig);
    Diag.Message =
        std::to_string(Conflicting.size()) +
        " instances drive overlapping parts of this unresolved signal; "
        "the simulators apply last-write-wins, synthesis shorts the "
        "drivers";
    for (uint32_t NI : Conflicting)
      Diag.Notes.push_back("driven by " + instName(D, C.Nodes[NI]));
    DE.report(std::move(Diag));
  }
}

//===----------------------------------------------------------------------===//
// undriven / never-read
//===----------------------------------------------------------------------===//

/// True if every drive of \p S mirrors a process-variable store: a `drv`
/// whose value operand is also written to memory by an `st` in the same
/// unit. That is the shape frontends lower blocking-assigned module
/// variables to (reads go through the variable, the signal exists only
/// for external visibility), so "never read" is expected, not a bug.
bool isVariableMirror(const Connectivity &C, SignalId S) {
  bool AnyDrive = false;
  for (uint32_t NI : C.DriversOf[S]) {
    for (const Connectivity::Drive &Dr : C.Nodes[NI].Drives) {
      if (Dr.Sig != S)
        continue;
      AnyDrive = true;
      if (!Dr.Origin || Dr.Origin->opcode() != Opcode::Drv)
        return false;
      const Value *V = Dr.Origin->operand(1);
      bool Stored = false;
      for (const Use *U : V->uses()) {
        const auto *I = dyn_cast<Instruction>(U->user());
        Stored |= I && I != Dr.Origin && I->opcode() == Opcode::St &&
                  U->operandIndex() == 1;
      }
      if (!Stored)
        return false;
    }
  }
  return AnyDrive;
}

void checkSignalUsage(const Design &D, const Connectivity &C,
                      DiagnosticEngine &DE) {
  std::set<SignalId> TopPorts = topPortSignals(D);
  for (SignalId S = 0; S != C.numSignals(); ++S) {
    if (D.Signals.canonical(S) != S || TopPorts.count(S))
      continue;
    bool Read = !C.ReadersOf[S].empty() || !C.WaitersOf[S].empty();
    bool Driven = !C.DriversOf[S].empty();
    if (Read && !Driven) {
      Diagnostic Diag;
      Diag.CheckId = "undriven";
      Diag.Location = sigName(D, S);
      Diag.Message = "signal is read but never driven: it keeps its "
                     "initial value forever";
      for (uint32_t NI : C.ReadersOf[S])
        Diag.Notes.push_back("read by " + instName(D, C.Nodes[NI]));
      DE.report(std::move(Diag));
    } else if (Driven && !Read) {
      if (isVariableMirror(C, S))
        continue;
      Diagnostic Diag;
      Diag.CheckId = "never-read";
      Diag.Location = sigName(D, S);
      Diag.Message = "signal is driven but never read or observed";
      for (uint32_t NI : C.DriversOf[S])
        Diag.Notes.push_back("driven by " + instName(D, C.Nodes[NI]));
      DE.report(std::move(Diag));
    }
  }
}

//===----------------------------------------------------------------------===//
// stale-sense
//===----------------------------------------------------------------------===//

void checkStaleSense(const Design &D, const Connectivity &C,
                     DiagnosticEngine &DE) {
  for (const Connectivity::Node &N : C.Nodes) {
    const UnitInstance &UI = D.Instances[N.Instance];
    // Only combinational single-wait processes: an edge-triggered
    // process legitimately samples data signals outside its sensitivity
    // list, and multi-wait/timeout processes pace themselves.
    if (!UI.U->isProcess() || N.Act != ActivationClass::Combinational ||
        N.HasDynamicRefs || N.Waits.empty())
      continue;
    std::vector<SignalId> Missing;
    std::set_difference(N.SteadyReads.begin(), N.SteadyReads.end(),
                        N.Waits.begin(), N.Waits.end(),
                        std::back_inserter(Missing));
    // A process legitimately reads its own driven signals without
    // observing them (read-modify-write state): observing a signal you
    // drive with zero delay would itself be a combinational loop.
    std::set<SignalId> Driven;
    for (const Connectivity::Drive &Dr : N.Drives)
      Driven.insert(Dr.Sig);
    Missing.erase(std::remove_if(Missing.begin(), Missing.end(),
                                 [&](SignalId S) { return Driven.count(S); }),
                  Missing.end());
    if (Missing.empty())
      continue;
    Diagnostic Diag;
    Diag.CheckId = "stale-sense";
    Diag.Location = instName(D, N);
    std::string List;
    for (SignalId S : Missing)
      List += (List.empty() ? "'" : ", '") + sigName(D, S) + "'";
    Diag.Message = "process reads " + List +
                   " without observing " +
                   (Missing.size() == 1 ? "it" : "them") +
                   ": a change does not re-trigger evaluation (stale "
                   "value in simulation, mismatch after synthesis)";
    DE.report(std::move(Diag));
  }
}

} // namespace

void llhd::lintDesign(const Design &D, DesignAnalysisManager &AM,
                      DiagnosticEngine &DE) {
  const Connectivity &C = AM.get<ConnectivityAnalysis>(D);

  // Unit-shape checks once per distinct instantiated unit.
  UnitAnalysisManager UAM;
  std::set<Unit *> Seen;
  for (const UnitInstance &UI : D.Instances)
    if (Seen.insert(UI.U).second)
      lintUnit(*UI.U, UAM, DE);

  CombLoopCheck(D, C, DE).run();
  checkMultiDrive(D, C, DE);
  checkSignalUsage(D, C, DE);
  checkStaleSense(D, C, DE);
}
