//===- analysis/AnalysisManager.h - Cached unit analyses --------*- C++ -*-===//
//
// The analysis half of the pass infrastructure (DESIGN.md, "Pass
// infrastructure"): a per-unit cache of analysis results keyed by an
// analysis ID. Passes request analyses through get<>() instead of
// constructing them, and report a PreservedAnalyses set afterwards that
// drives invalidation — so a pass that does not touch the CFG lets the
// next pass reuse the DominatorTree for free.
//
// Registered analyses and their dependency chain:
//   CfgAnalysis -> DominatorTreeAnalysis -> DominanceFrontiersAnalysis
//   CfgAnalysis -> TemporalRegionsAnalysis
// invalidate() enforces the chain: dropping a parent drops its children
// even if the caller's PreservedAnalyses claims otherwise.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_ANALYSISMANAGER_H
#define LLHD_ANALYSIS_ANALYSISMANAGER_H

#include "analysis/Cfg.h"
#include "analysis/DominanceFrontiers.h"
#include "analysis/Dominators.h"
#include "analysis/TemporalRegions.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>

namespace llhd {

class UnitAnalysisManager;

/// Opaque identity of one analysis type.
using AnalysisKey = const void *;

/// The set of analyses a pass left intact. Passes return this from their
/// managed entry point; the manager intersects it with the cache.
class PreservedAnalyses {
public:
  /// Nothing changed: every cached result stays valid.
  static PreservedAnalyses all() {
    PreservedAnalyses P;
    P.All = true;
    return P;
  }
  /// The IR changed arbitrarily: drop everything.
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  PreservedAnalyses &preserve(AnalysisKey K) {
    Keys.insert(K);
    return *this;
  }
  template <typename AnalysisT> PreservedAnalyses &preserve() {
    return preserve(AnalysisT::key());
  }

  bool isAll() const { return All; }
  bool preserved(AnalysisKey K) const { return All || Keys.count(K); }

  /// Combines with a second set (a pipeline preserves the intersection).
  void intersect(const PreservedAnalyses &O);

private:
  bool All = false;
  std::set<AnalysisKey> Keys;
};

//===----------------------------------------------------------------------===//
// Analysis registrations.
//===----------------------------------------------------------------------===//

/// CFG orderings (RPO, reachability).
struct CfgAnalysis {
  using Result = CfgInfo;
  static AnalysisKey key();
  static constexpr const char *Name = "cfg";
  static Result run(Unit &U, UnitAnalysisManager &AM);
};

/// Dominator tree, built on the cached CFG ordering.
struct DominatorTreeAnalysis {
  using Result = DominatorTree;
  static AnalysisKey key();
  static constexpr const char *Name = "domtree";
  static Result run(Unit &U, UnitAnalysisManager &AM);
};

/// Temporal regions (§4.3.1).
struct TemporalRegionsAnalysis {
  using Result = TemporalRegions;
  static AnalysisKey key();
  static constexpr const char *Name = "temporal-regions";
  static Result run(Unit &U, UnitAnalysisManager &AM);
};

/// Dominance frontiers, built on the cached dominator tree.
struct DominanceFrontiersAnalysis {
  using Result = DominanceFrontiers;
  static AnalysisKey key();
  static constexpr const char *Name = "dom-frontiers";
  static Result run(Unit &U, UnitAnalysisManager &AM);
};

//===----------------------------------------------------------------------===//
// The manager.
//===----------------------------------------------------------------------===//

/// Per-unit analysis cache. Not thread-safe: the parallel module
/// scheduler gives every worker thread its own manager.
class UnitAnalysisManager {
public:
  struct Stats {
    uint64_t Hits = 0;          ///< get<>() served from the cache.
    uint64_t Misses = 0;        ///< get<>() had to run the analysis.
    uint64_t Invalidations = 0; ///< Cached results dropped.

    void merge(const Stats &O) {
      Hits += O.Hits;
      Misses += O.Misses;
      Invalidations += O.Invalidations;
    }
    double hitRate() const {
      uint64_t Total = Hits + Misses;
      return Total ? double(Hits) / double(Total) : 0.0;
    }
  };

  /// Cached (or freshly computed) result of \p AnalysisT on \p U.
  template <typename AnalysisT> typename AnalysisT::Result &get(Unit &U) {
    AnalysisKey K = AnalysisT::key();
    auto &UnitMap = Results[&U];
    auto It = UnitMap.find(K);
    if (It != UnitMap.end()) {
      ++TheStats.Hits;
      return static_cast<Model<typename AnalysisT::Result> *>(It->second.get())
          ->Value;
    }
    ++TheStats.Misses;
    // Run outside the map slot: the analysis may recursively request its
    // own inputs (std::map nodes are stable, but the iterator position of
    // an un-inserted slot is not).
    auto Holder = std::make_unique<Model<typename AnalysisT::Result>>(
        AnalysisT::run(U, *this));
    auto *Ptr = Holder.get();
    Results[&U][K] = std::move(Holder);
    return Ptr->Value;
  }

  /// True if \p AnalysisT is currently cached for \p U (test hook).
  template <typename AnalysisT> bool isCached(const Unit &U) const {
    auto It = Results.find(&U);
    return It != Results.end() && It->second.count(AnalysisT::key());
  }

  /// Drops every result for \p U that \p PA does not preserve, honouring
  /// the analysis dependency chain.
  void invalidate(Unit &U, const PreservedAnalyses &PA);

  /// Drops every result for \p U (CFG surgery mid-pass).
  void invalidateAll(Unit &U);

  /// Forgets everything (also use when a unit is erased).
  void clear();

  const Stats &stats() const { return TheStats; }

private:
  struct Concept {
    virtual ~Concept() = default;
  };
  template <typename T> struct Model : Concept {
    explicit Model(T &&V) : Value(std::move(V)) {}
    T Value;
  };

  std::map<const Unit *, std::map<AnalysisKey, std::unique_ptr<Concept>>>
      Results;
  Stats TheStats;
};

/// Convenience: the PreservedAnalyses set of a pass that edited
/// instructions but left the block structure alone (all four CFG-shaped
/// analyses survive).
PreservedAnalyses preserveCfgAnalyses();

} // namespace llhd

#endif // LLHD_ANALYSIS_ANALYSISMANAGER_H
