//===- analysis/Connectivity.h - Signal connectivity graph ------*- C++ -*-===//
//
// The elaboration-level signal connectivity graph: for every elaborated
// unit instance, which canonical signals it reads, drives (with a static
// delay class), and waits on, plus a per-drive dependency set tracing
// the probed signals the driven value (and its enabling control flow)
// depends on. Everything is derived from the same bindings and
// SignalTable canonicalisation the engines execute — the graph is the
// static twin of the runtime sensitivity machinery (Design::
// EntityWatchers / WakeIndex).
//
// Consumers:
//  - the lint check suite (src/lint/): combinational-loop detection runs
//    Tarjan SCC over the zero-delay read->drive edges; driver conflicts,
//    undriven/never-read signals and stale sensitivity read the reverse
//    indices directly;
//  - process partitioning for parallel simulation (ROADMAP item 2): the
//    node/edge structure is exactly the static communication graph a
//    partitioner needs.
//
// Results are cached in a DesignAnalysisManager (the design-level
// sibling of UnitAnalysisManager) so repeated lint/partition queries on
// one elaborated design compute the graph once.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_CONNECTIVITY_H
#define LLHD_ANALYSIS_CONNECTIVITY_H

#include "sim/Design.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace llhd {

class DesignAnalysisManager;

//===----------------------------------------------------------------------===//
// The graph.
//===----------------------------------------------------------------------===//

/// Static delay classification of one drive.
enum class DriveDelay : uint8_t {
  Delta,    ///< Constant zero delay: lands on the next delta cycle.
  Physical, ///< Constant nonzero physical time.
  Unknown,  ///< Delay is not statically constant (possibly zero).
};

const char *driveDelayName(DriveDelay D);

/// How an instance is (re-)activated relative to its wake signals.
enum class ActivationClass : uint8_t {
  Combinational, ///< Re-evaluates whenever a wake signal changes
                 ///< (entities; single-wait processes without edge
                 ///< detection — the always_comb shape).
  EdgeTriggered, ///< Single static wait plus an edge detector sampling a
                 ///< wake signal on both sides of the wait (the
                 ///< always_ff shape); drives fire only on real edges,
                 ///< so they cannot sustain a zero-delay loop.
  General,       ///< Multiple waits, timeouts, or dynamic sensitivity.
};

const char *activationClassName(ActivationClass C);

/// Signal connectivity of one elaborated design.
struct Connectivity {
  /// One drive statement (drv, reg trigger, or del) of one instance.
  struct Drive {
    SignalId Sig = InvalidSignal; ///< Canonical driven signal.
    SigRef Ref;                   ///< Resolved (sub-)signal reference.
    DriveDelay Delay = DriveDelay::Unknown;
    /// True when the drive fires only on an edge (edge-mode `reg`
    /// triggers, or any drive of an EdgeTriggered process): such drives
    /// break combinational cycles like a flip-flop does.
    bool Sequential = false;
    /// Canonical signals whose current values can influence the driven
    /// value, enable condition, or the control flow reaching the drive.
    std::vector<SignalId> Deps;
    /// The subset of Deps that can re-trigger this drive in the same
    /// instant: for entities every dep (they wake on any read), for
    /// processes the deps observed by a wait the drive can loop
    /// through. Zero-delay-cycle detection follows exactly these edges.
    std::vector<SignalId> WakeDeps;
    /// The resolved references behind WakeDeps — loop detection tests
    /// these for storage overlap with Ref, so `x[0] <= f(x[1])` does not
    /// read as a self-loop on x.
    std::vector<SigRef> WakeDepRefs;
    /// Originating IR instruction (diagnostics only).
    const Instruction *Origin = nullptr;
  };

  /// Connectivity of one instance; parallel to Design::Instances.
  struct Node {
    uint32_t Instance = 0; ///< Index into Design::Instances.
    ActivationClass Act = ActivationClass::General;
    /// Canonical signals probed (prb, del source), sorted.
    std::vector<SignalId> Reads;
    /// Reads reachable after a wait resumption — the steady-state read
    /// set the sensitivity checks compare against (initialisation-only
    /// reads before the first wait are excluded). Equals Reads for
    /// entities.
    std::vector<SignalId> SteadyReads;
    /// Canonical signals in wait observe sets (processes) or the full
    /// probe set (entities — they implicitly wake on every read).
    std::vector<SignalId> Waits;
    std::vector<Drive> Drives;
    /// Some signal operand could not be resolved to elaborated storage
    /// (dynamically computed references); the lists above are then a
    /// best-effort under-approximation for this node.
    bool HasDynamicRefs = false;
    /// Some wait carries a timeout (self-scheduling process).
    bool TimeoutWaits = false;
  };

  std::vector<Node> Nodes;
  /// Reverse indices: canonical signal -> indices into Nodes.
  std::vector<std::vector<uint32_t>> ReadersOf;
  std::vector<std::vector<uint32_t>> DriversOf;
  std::vector<std::vector<uint32_t>> WaitersOf;

  unsigned numSignals() const { return ReadersOf.size(); }

  /// Deterministic textual form for golden tests and --dump-connectivity.
  std::string dump(const Design &D) const;
};

/// Builds the connectivity graph of \p D (prefer the cached accessor
/// DesignAnalysisManager::get<ConnectivityAnalysis>).
Connectivity computeConnectivity(const Design &D);

/// True if two resolved references into the same canonical signal can
/// touch overlapping storage (conservative: true when unsure).
bool sigRefsOverlap(const SigRef &A, const SigRef &B);

/// Renders a resolved reference as "<signal name>[path][range]" for
/// diagnostics, e.g. "top/x", "top/regs[3]", "top/bus[7:4]".
std::string signalRefName(const Design &D, const SigRef &R);

//===----------------------------------------------------------------------===//
// Design-level analysis manager.
//===----------------------------------------------------------------------===//

/// Cached design-level analyses, keyed by analysis ID — the design-scope
/// sibling of UnitAnalysisManager. A Design is immutable once
/// elaborated, so invalidation is coarse: invalidate(D) drops everything
/// cached for that design (used when a caller re-elaborates).
class DesignAnalysisManager {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };

  template <typename AnalysisT>
  typename AnalysisT::Result &get(const Design &D) {
    const void *K = AnalysisT::key();
    auto &Map = Results[&D];
    auto It = Map.find(K);
    if (It != Map.end()) {
      ++TheStats.Hits;
      return static_cast<Model<typename AnalysisT::Result> *>(It->second.get())
          ->Value;
    }
    ++TheStats.Misses;
    auto Holder = std::make_unique<Model<typename AnalysisT::Result>>(
        AnalysisT::run(D, *this));
    auto *Ptr = Holder.get();
    Results[&D][K] = std::move(Holder);
    return Ptr->Value;
  }

  /// True if \p AnalysisT is currently cached for \p D (test hook).
  template <typename AnalysisT> bool isCached(const Design &D) const {
    auto It = Results.find(&D);
    return It != Results.end() && It->second.count(AnalysisT::key());
  }

  /// Drops everything cached for \p D.
  void invalidate(const Design &D) { Results.erase(&D); }
  void clear() { Results.clear(); }

  const Stats &stats() const { return TheStats; }

private:
  struct Concept {
    virtual ~Concept() = default;
  };
  template <typename T> struct Model : Concept {
    explicit Model(T &&V) : Value(std::move(V)) {}
    T Value;
  };

  std::map<const Design *, std::map<const void *, std::unique_ptr<Concept>>>
      Results;
  Stats TheStats;
};

/// The connectivity graph as a registered design analysis.
struct ConnectivityAnalysis {
  using Result = Connectivity;
  static const void *key();
  static constexpr const char *Name = "connectivity";
  static Result run(const Design &D, DesignAnalysisManager &AM);
};

} // namespace llhd

#endif // LLHD_ANALYSIS_CONNECTIVITY_H
