//===- analysis/TemporalRegions.cpp - Temporal region analysis -------------===//

#include "analysis/TemporalRegions.h"
#include "analysis/Cfg.h"

using namespace llhd;

TemporalRegions::TemporalRegions(Unit &U) {
  std::vector<BasicBlock *> RPO = reversePostOrder(U);
  for (BasicBlock *BB : RPO) {
    auto Preds = BB->predecessors();
    bool NewRegion = BB == U.entry();
    for (BasicBlock *P : Preds) {
      Instruction *T = P->terminator();
      if (T && T->opcode() == Opcode::Wait)
        NewRegion = true;
    }
    unsigned Id;
    if (NewRegion) {
      Id = Blocks.size();
      Blocks.emplace_back();
      Entries.push_back(BB);
    } else {
      // Rule 2/3: inherit if all (assigned) predecessors agree, else new.
      int Inherit = -1;
      bool Mixed = false;
      for (BasicBlock *P : Preds) {
        auto It = Region.find(P);
        if (It == Region.end())
          continue; // Back edge within a loop: resolved by the RPO pass
                    // below (a back edge from the same TR is consistent).
        if (Inherit == -1)
          Inherit = It->second;
        else if (Inherit != static_cast<int>(It->second))
          Mixed = true;
      }
      if (Inherit == -1 || Mixed) {
        Id = Blocks.size();
        Blocks.emplace_back();
        Entries.push_back(BB);
      } else {
        Id = Inherit;
      }
    }
    Region[BB] = Id;
    Blocks[Id].push_back(BB);
  }
}

std::vector<BasicBlock *>
TemporalRegions::exitingBlocksOf(unsigned Id) const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *BB : Blocks[Id]) {
    Instruction *T = BB->terminator();
    if (!T)
      continue;
    if (T->opcode() == Opcode::Wait || T->opcode() == Opcode::Halt) {
      Result.push_back(BB);
      continue;
    }
    for (BasicBlock *S : BB->successors()) {
      if (hasRegion(S) && regionOf(S) != Id) {
        Result.push_back(BB);
        break;
      }
    }
  }
  return Result;
}
