//===- analysis/Cfg.cpp - CFG traversal utilities --------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <set>

using namespace llhd;

static void postOrderVisit(BasicBlock *BB, std::set<BasicBlock *> &Seen,
                           std::vector<BasicBlock *> &Out) {
  if (!Seen.insert(BB).second)
    return;
  for (BasicBlock *S : BB->successors())
    postOrderVisit(S, Seen, Out);
  Out.push_back(BB);
}

std::vector<BasicBlock *> llhd::reversePostOrder(Unit &U) {
  std::vector<BasicBlock *> PO;
  if (!U.hasBody())
    return PO;
  std::set<BasicBlock *> Seen;
  postOrderVisit(U.entry(), Seen, PO);
  std::reverse(PO.begin(), PO.end());
  return PO;
}

std::vector<BasicBlock *> llhd::unreachableBlocks(Unit &U) {
  std::vector<BasicBlock *> Result;
  if (!U.hasBody())
    return Result;
  std::set<BasicBlock *> Seen;
  std::vector<BasicBlock *> PO;
  postOrderVisit(U.entry(), Seen, PO);
  for (BasicBlock *BB : U.blocks())
    if (!Seen.count(BB))
      Result.push_back(BB);
  return Result;
}

CfgInfo::CfgInfo(Unit &U) {
  Rpo = reversePostOrder(U);
  for (unsigned I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
  for (BasicBlock *BB : U.blocks())
    if (!RpoIndex.count(BB))
      Unreachable.push_back(BB);
}

void llhd::redirectEdges(BasicBlock *Pred, BasicBlock *From, BasicBlock *To) {
  Instruction *T = Pred->terminator();
  assert(T && "predecessor has no terminator");
  for (unsigned I = 0, E = T->numOperands(); I != E; ++I)
    if (T->operand(I) == From)
      T->setOperand(I, To);
}
