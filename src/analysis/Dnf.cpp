//===- analysis/Dnf.cpp - Disjunctive normal form of i1 values -------------===//

#include "analysis/Dnf.h"

#include "ir/Unit.h"

#include <algorithm>
#include <functional>
#include <set>
#include <tuple>

using namespace llhd;

static const unsigned MaxDepth = 32;

/// Stable, heap-layout-independent ordering key of a value: arguments by
/// direction and index, instructions by (block position, instruction
/// position) within their unit. Distinct values always have distinct
/// keys, so this is a strict total order wherever DNF literals can come
/// from.
static std::tuple<int, unsigned, unsigned> positionKey(const Value *V) {
  if (const auto *A = dyn_cast<Argument>(V))
    return {0, A->isInput() ? 0u : 1u, A->index()};
  if (const auto *I = dyn_cast<Instruction>(V)) {
    const BasicBlock *BB = I->parent();
    const Unit *U = BB ? BB->parent() : nullptr;
    unsigned BlockIdx = 0;
    if (U)
      for (const BasicBlock *Cand : U->blocks()) {
        if (Cand == BB)
          break;
        ++BlockIdx;
      }
    return {1, BlockIdx, BB ? BB->indexOf(I) : 0};
  }
  return {2, 0, 0};
}

bool DnfLiteral::operator<(const DnfLiteral &RHS) const {
  if (Val != RHS.Val) {
    auto K = positionKey(Val), RK = positionKey(RHS.Val);
    if (K != RK)
      return K < RK;
    return Val < RHS.Val; // Unreachable for parented values; last resort.
  }
  return Negated < RHS.Negated;
}

namespace {

/// Comparator used by normalise(): same order as DnfLiteral::operator<,
/// but with the position keys memoised so sorting does not recompute the
/// O(unit-size) key per comparison.
struct LiteralOrder {
  mutable std::map<const Value *, std::tuple<int, unsigned, unsigned>> Keys;

  const std::tuple<int, unsigned, unsigned> &keyOf(const Value *V) const {
    auto It = Keys.find(V);
    if (It == Keys.end())
      It = Keys.emplace(V, positionKey(V)).first;
    return It->second;
  }

  bool operator()(const DnfLiteral &A, const DnfLiteral &B) const {
    if (A.Val != B.Val) {
      const auto &KA = keyOf(A.Val);
      const auto &KB = keyOf(B.Val);
      if (KA != KB)
        return KA < KB;
      return A.Val < B.Val;
    }
    return A.Negated < B.Negated;
  }
  bool operator()(const DnfTerm &A, const DnfTerm &B) const {
    return std::lexicographical_compare(A.begin(), A.end(), B.begin(),
                                        B.end(),
                                        [this](const DnfLiteral &X,
                                               const DnfLiteral &Y) {
                                          return (*this)(X, Y);
                                        });
  }
};

} // namespace

Dnf Dnf::of(Value *V, unsigned MaxTerms) {
  assert(V->type()->isBool() && "DNF over non-boolean value");
  return build(V, /*Negated=*/false, MaxTerms, 0);
}

Dnf Dnf::ofNegated(Value *V, unsigned MaxTerms) {
  assert(V->type()->isBool() && "DNF over non-boolean value");
  return build(V, /*Negated=*/true, MaxTerms, 0);
}

Dnf Dnf::build(Value *V, bool Negated, unsigned MaxTerms, unsigned Depth) {
  auto opaque = [&]() {
    Dnf D;
    D.Terms.push_back({DnfLiteral{V, Negated}});
    return D;
  };

  auto *I = dyn_cast<Instruction>(V);
  if (!I || Depth >= MaxDepth)
    return opaque();

  switch (I->opcode()) {
  case Opcode::Const:
    // const i1 1 is "true", const i1 0 is "false"; negation flips.
    return I->intValue().isZero() == Negated ? alwaysTrue() : alwaysFalse();
  case Opcode::Not:
    return build(I->operand(0), !Negated, MaxTerms, Depth + 1);
  case Opcode::And: {
    Dnf A = build(I->operand(0), Negated, MaxTerms, Depth + 1);
    Dnf B = build(I->operand(1), Negated, MaxTerms, Depth + 1);
    // ¬(a∧b) = ¬a ∨ ¬b.
    Dnf R = Negated ? orOf(std::move(A), B, MaxTerms)
                    : andOf(A, B, MaxTerms);
    if (R.Terms.size() > MaxTerms)
      return opaque();
    return R;
  }
  case Opcode::Or: {
    Dnf A = build(I->operand(0), Negated, MaxTerms, Depth + 1);
    Dnf B = build(I->operand(1), Negated, MaxTerms, Depth + 1);
    Dnf R = Negated ? andOf(A, B, MaxTerms)
                    : orOf(std::move(A), B, MaxTerms);
    if (R.Terms.size() > MaxTerms)
      return opaque();
    return R;
  }
  case Opcode::Xor:
  case Opcode::Neq:
  case Opcode::Eq: {
    if (!I->operand(0)->type()->isBool())
      return opaque();
    // a≠b (xor) = (a∧¬b)∨(¬a∧b); a=b is its negation. The instruction's
    // own Negated flag folds into which of the two we emit.
    bool WantXor = (I->opcode() != Opcode::Eq) != Negated;
    Dnf A = build(I->operand(0), false, MaxTerms, Depth + 1);
    Dnf NA = build(I->operand(0), true, MaxTerms, Depth + 1);
    Dnf B = build(I->operand(1), false, MaxTerms, Depth + 1);
    Dnf NB = build(I->operand(1), true, MaxTerms, Depth + 1);
    Dnf R = WantXor ? orOf(andOf(A, NB, MaxTerms), andOf(NA, B, MaxTerms),
                           MaxTerms)
                    : orOf(andOf(A, B, MaxTerms), andOf(NA, NB, MaxTerms),
                           MaxTerms);
    if (R.Terms.size() > MaxTerms)
      return opaque();
    return R;
  }
  default:
    return opaque();
  }
}

Dnf Dnf::orOf(Dnf A, const Dnf &B, unsigned MaxTerms) {
  for (const DnfTerm &T : B.Terms)
    A.Terms.push_back(T);
  A.normalise();
  return A;
}

Dnf Dnf::andOf(const Dnf &A, const Dnf &B, unsigned MaxTerms) {
  Dnf R;
  for (const DnfTerm &TA : A.Terms) {
    for (const DnfTerm &TB : B.Terms) {
      DnfTerm T = TA;
      T.insert(T.end(), TB.begin(), TB.end());
      R.Terms.push_back(std::move(T));
      if (R.Terms.size() > MaxTerms * 4)
        break; // Normalisation may shrink it; hard cap against blowup.
    }
  }
  R.normalise();
  return R;
}

void Dnf::normalise() {
  // std::ref: sort copies its comparator, and the key memo must be
  // shared across every sort of this normalisation.
  LiteralOrder Order;
  std::vector<DnfTerm> Out;
  for (DnfTerm &T : Terms) {
    std::sort(T.begin(), T.end(), std::ref(Order));
    T.erase(std::unique(T.begin(), T.end()), T.end());
    // Drop terms containing x ∧ ¬x.
    bool Contradiction = false;
    for (unsigned I = 0; I + 1 < T.size(); ++I)
      if (T[I].Val == T[I + 1].Val && T[I].Negated != T[I + 1].Negated)
        Contradiction = true;
    if (!Contradiction)
      Out.push_back(std::move(T));
  }
  std::sort(Out.begin(), Out.end(), std::ref(Order));
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  // If any term is empty, the whole DNF is true.
  for (const DnfTerm &T : Out)
    if (T.empty()) {
      Terms.assign(1, {});
      return;
    }
  Terms = std::move(Out);
}

std::string Dnf::toString() const {
  if (isTrue())
    return "true";
  if (isFalse())
    return "false";
  std::string S;
  for (unsigned I = 0; I != Terms.size(); ++I) {
    if (I != 0)
      S += " | ";
    S += "(";
    for (unsigned J = 0; J != Terms[I].size(); ++J) {
      if (J != 0)
        S += " & ";
      const DnfLiteral &L = Terms[I][J];
      if (L.Negated)
        S += "!";
      S += L.Val->hasName() ? L.Val->name() : "<anon>";
    }
    S += ")";
  }
  return S;
}
