//===- analysis/Cfg.h - CFG traversal utilities -----------------*- C++ -*-===//
//
// Order computations and small CFG helpers shared by analyses and passes.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_CFG_H
#define LLHD_ANALYSIS_CFG_H

#include "ir/Unit.h"

#include <vector>

namespace llhd {

/// Blocks of \p U in reverse post-order (entry first).
std::vector<BasicBlock *> reversePostOrder(Unit &U);

/// Blocks not reachable from the entry block.
std::vector<BasicBlock *> unreachableBlocks(Unit &U);

/// Rewrites the terminator of \p Pred so that edges to \p From point to
/// \p To, and updates phis in \p From/\p To accordingly is left to callers.
void redirectEdges(BasicBlock *Pred, BasicBlock *From, BasicBlock *To);

} // namespace llhd

#endif // LLHD_ANALYSIS_CFG_H
