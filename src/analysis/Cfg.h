//===- analysis/Cfg.h - CFG traversal utilities -----------------*- C++ -*-===//
//
// Order computations and small CFG helpers shared by analyses and passes.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_CFG_H
#define LLHD_ANALYSIS_CFG_H

#include "ir/Unit.h"

#include <map>
#include <vector>

namespace llhd {

/// Blocks of \p U in reverse post-order (entry first).
std::vector<BasicBlock *> reversePostOrder(Unit &U);

/// Blocks not reachable from the entry block.
std::vector<BasicBlock *> unreachableBlocks(Unit &U);

/// Cached CFG orderings of one unit: reverse post-order, per-block RPO
/// indices and the unreachable-block set. This is the cheapest of the
/// cached analyses (see DESIGN.md, "Pass infrastructure") and the input
/// to the dominator computation. Invalidated by any CFG edit.
class CfgInfo {
public:
  explicit CfgInfo(Unit &U);

  /// Reachable blocks in reverse post-order (entry first).
  const std::vector<BasicBlock *> &rpo() const { return Rpo; }

  /// Blocks not reachable from the entry, in unit block order.
  const std::vector<BasicBlock *> &unreachable() const { return Unreachable; }

  bool isReachable(const BasicBlock *BB) const { return RpoIndex.count(BB); }

  /// RPO position of a reachable block.
  unsigned rpoIndexOf(const BasicBlock *BB) const {
    auto It = RpoIndex.find(BB);
    assert(It != RpoIndex.end() && "block is unreachable");
    return It->second;
  }

private:
  std::vector<BasicBlock *> Rpo;
  std::vector<BasicBlock *> Unreachable;
  std::map<const BasicBlock *, unsigned> RpoIndex;
};

/// Rewrites the terminator of \p Pred so that edges to \p From point to
/// \p To, and updates phis in \p From/\p To accordingly is left to callers.
void redirectEdges(BasicBlock *Pred, BasicBlock *From, BasicBlock *To);

} // namespace llhd

#endif // LLHD_ANALYSIS_CFG_H
