//===- analysis/AnalysisManager.cpp - Cached unit analyses ------------------===//

#include "analysis/AnalysisManager.h"

using namespace llhd;

void PreservedAnalyses::intersect(const PreservedAnalyses &O) {
  if (O.isAll())
    return;
  if (All) {
    All = false;
    Keys = O.Keys;
    return;
  }
  std::set<AnalysisKey> Out;
  for (AnalysisKey K : Keys)
    if (O.preserved(K))
      Out.insert(K);
  Keys = std::move(Out);
}

//===----------------------------------------------------------------------===//
// Analysis registrations.
//===----------------------------------------------------------------------===//

AnalysisKey CfgAnalysis::key() {
  static char ID;
  return &ID;
}
CfgInfo CfgAnalysis::run(Unit &U, UnitAnalysisManager &) { return CfgInfo(U); }

AnalysisKey DominatorTreeAnalysis::key() {
  static char ID;
  return &ID;
}
DominatorTree DominatorTreeAnalysis::run(Unit &U, UnitAnalysisManager &AM) {
  return DominatorTree(U, AM.get<CfgAnalysis>(U));
}

AnalysisKey TemporalRegionsAnalysis::key() {
  static char ID;
  return &ID;
}
TemporalRegions TemporalRegionsAnalysis::run(Unit &U, UnitAnalysisManager &) {
  return TemporalRegions(U);
}

AnalysisKey DominanceFrontiersAnalysis::key() {
  static char ID;
  return &ID;
}
DominanceFrontiers DominanceFrontiersAnalysis::run(Unit &U,
                                                   UnitAnalysisManager &AM) {
  return DominanceFrontiers(U, AM.get<DominatorTreeAnalysis>(U));
}

//===----------------------------------------------------------------------===//
// The manager.
//===----------------------------------------------------------------------===//

void UnitAnalysisManager::invalidate(Unit &U, const PreservedAnalyses &PA) {
  if (PA.isAll())
    return;
  auto It = Results.find(&U);
  if (It == Results.end())
    return;

  // Enforce the dependency chain: a dropped parent drops its children.
  bool DropCfg = !PA.preserved(CfgAnalysis::key());
  bool DropDom = DropCfg || !PA.preserved(DominatorTreeAnalysis::key());
  auto ShouldDrop = [&](AnalysisKey K) {
    if (K == CfgAnalysis::key())
      return DropCfg;
    if (K == DominatorTreeAnalysis::key())
      return DropDom;
    if (K == DominanceFrontiersAnalysis::key())
      return DropDom || !PA.preserved(DominanceFrontiersAnalysis::key());
    if (K == TemporalRegionsAnalysis::key())
      return DropCfg || !PA.preserved(TemporalRegionsAnalysis::key());
    return !PA.preserved(K);
  };

  auto &UnitMap = It->second;
  for (auto KV = UnitMap.begin(); KV != UnitMap.end();) {
    if (ShouldDrop(KV->first)) {
      KV = UnitMap.erase(KV);
      ++TheStats.Invalidations;
    } else {
      ++KV;
    }
  }
  if (UnitMap.empty())
    Results.erase(It);
}

void UnitAnalysisManager::invalidateAll(Unit &U) {
  auto It = Results.find(&U);
  if (It == Results.end())
    return;
  TheStats.Invalidations += It->second.size();
  Results.erase(It);
}

void UnitAnalysisManager::clear() { Results.clear(); }

PreservedAnalyses llhd::preserveCfgAnalyses() {
  return PreservedAnalyses::none()
      .preserve<CfgAnalysis>()
      .preserve<DominatorTreeAnalysis>()
      .preserve<TemporalRegionsAnalysis>()
      .preserve<DominanceFrontiersAnalysis>();
}
