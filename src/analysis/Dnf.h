//===- analysis/Dnf.h - Disjunctive normal form of i1 values ----*- C++ -*-===//
//
// Canonicalises boolean (i1) SSA expressions into disjunctive normal form
// (§4.6). Non-canonicalisable sub-expressions are retained as opaque
// literals. Used by desequentialisation to identify edge and level
// triggers in drive conditions.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_DNF_H
#define LLHD_ANALYSIS_DNF_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace llhd {

/// One literal of a DNF term: a boolean value or its negation.
struct DnfLiteral {
  Value *Val;
  bool Negated;

  bool operator==(const DnfLiteral &RHS) const {
    return Val == RHS.Val && Negated == RHS.Negated;
  }
  /// Orders by program position (argument index / instruction position),
  /// not by pointer: DNF term order decides the order in which deseq
  /// emits reg triggers and gating chains, and that output must not
  /// depend on heap layout (serial and parallel lowering print
  /// identically).
  bool operator<(const DnfLiteral &RHS) const;
};

/// A conjunction of literals (sorted, duplicate-free).
using DnfTerm = std::vector<DnfLiteral>;

/// A disjunction of conjunctive terms.
class Dnf {
public:
  /// Canonicalises \p V (must be i1-typed). Expands and/or/not/xor and
  /// i1 eq/neq; anything else becomes an opaque literal. If the expansion
  /// exceeds \p MaxTerms the result is the single opaque literal \p V.
  static Dnf of(Value *V, unsigned MaxTerms = 64);
  /// DNF of the negation of \p V.
  static Dnf ofNegated(Value *V, unsigned MaxTerms = 64);

  static Dnf alwaysTrue() {
    Dnf D;
    D.Terms.push_back({});
    return D;
  }
  static Dnf alwaysFalse() { return Dnf(); }

  bool isFalse() const { return Terms.empty(); }
  bool isTrue() const { return Terms.size() == 1 && Terms[0].empty(); }

  const std::vector<DnfTerm> &terms() const { return Terms; }

  /// Renders e.g. "(a & !b) | (c)" using value names.
  std::string toString() const;

private:
  static Dnf build(Value *V, bool Negated, unsigned MaxTerms,
                   unsigned Depth);
  static Dnf orOf(Dnf A, const Dnf &B, unsigned MaxTerms);
  static Dnf andOf(const Dnf &A, const Dnf &B, unsigned MaxTerms);
  void normalise();

  std::vector<DnfTerm> Terms;
};

} // namespace llhd

#endif // LLHD_ANALYSIS_DNF_H
