//===- analysis/DominanceFrontiers.cpp - Dominance frontiers ----------------===//

#include "analysis/DominanceFrontiers.h"
#include "analysis/Dominators.h"

using namespace llhd;

DominanceFrontiers::DominanceFrontiers(Unit &U, const DominatorTree &DT) {
  // Cytron et al.: a join block is in the frontier of every predecessor
  // chain up to (but excluding) its immediate dominator.
  for (BasicBlock *BB : U.blocks()) {
    auto Preds = BB->predecessors();
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *P : Preds) {
      BasicBlock *Runner = P;
      while (Runner && Runner != DT.idom(BB)) {
        DF[Runner].insert(BB);
        Runner = DT.idom(Runner);
      }
    }
  }
}
