//===- analysis/TemporalRegions.h - Temporal region analysis ----*- C++ -*-===//
//
// Temporal Regions (§4.3.1): partitions the blocks of a process into
// sections of code that execute during one fixed point in physical time.
// TRs are delimited by `wait` terminators:
//   1. A block after a wait (or the entry block) starts a new TR.
//   2. If all predecessors share one TR, the block inherits it.
//   3. If predecessors have distinct TRs, a new TR starts.
// As a result every TR has a unique entry block.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_TEMPORALREGIONS_H
#define LLHD_ANALYSIS_TEMPORALREGIONS_H

#include "ir/Unit.h"

#include <map>
#include <vector>

namespace llhd {

/// Temporal region assignment for one process.
class TemporalRegions {
public:
  explicit TemporalRegions(Unit &U);

  /// TR id of a block (0-based).
  unsigned regionOf(const BasicBlock *BB) const {
    auto It = Region.find(BB);
    assert(It != Region.end() && "block has no TR (unreachable?)");
    return It->second;
  }
  bool hasRegion(const BasicBlock *BB) const { return Region.count(BB); }

  unsigned numRegions() const { return Blocks.size(); }

  /// Blocks belonging to TR \p Id, in reverse post-order.
  const std::vector<BasicBlock *> &blocksOf(unsigned Id) const {
    return Blocks[Id];
  }

  /// The unique block through which control enters TR \p Id.
  BasicBlock *entryOf(unsigned Id) const { return Entries[Id]; }

  /// Blocks of TR \p Id whose terminator leaves the TR (wait terminators
  /// and branches into other TRs).
  std::vector<BasicBlock *> exitingBlocksOf(unsigned Id) const;

  /// True if \p I executes in TR \p Id.
  bool instInRegion(const Instruction *I, unsigned Id) const {
    return hasRegion(I->parent()) && regionOf(I->parent()) == Id;
  }

private:
  std::map<const BasicBlock *, unsigned> Region;
  std::vector<std::vector<BasicBlock *>> Blocks;
  std::vector<BasicBlock *> Entries;
};

} // namespace llhd

#endif // LLHD_ANALYSIS_TEMPORALREGIONS_H
