//===- analysis/DominanceFrontiers.h - Dominance frontiers ------*- C++ -*-===//
//
// Per-block dominance frontiers (Cytron et al.), lifted out of Mem2Reg so
// the phi-placement sets can be cached and shared across promotion runs
// through the AnalysisManager (see DESIGN.md, "Pass infrastructure").
// Derived from the DominatorTree; invalidated by any CFG edit.
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_DOMINANCEFRONTIERS_H
#define LLHD_ANALYSIS_DOMINANCEFRONTIERS_H

#include "ir/Unit.h"

#include <map>
#include <set>

namespace llhd {

class DominatorTree;

/// Dominance frontier sets for every block of one unit.
class DominanceFrontiers {
public:
  DominanceFrontiers(Unit &U, const DominatorTree &DT);

  /// Frontier of \p BB (empty set if BB has none or is unreachable).
  const std::set<BasicBlock *> &frontierOf(BasicBlock *BB) const {
    auto It = DF.find(BB);
    return It == DF.end() ? Empty : It->second;
  }

private:
  std::map<BasicBlock *, std::set<BasicBlock *>> DF;
  std::set<BasicBlock *> Empty;
};

} // namespace llhd

#endif // LLHD_ANALYSIS_DOMINANCEFRONTIERS_H
