//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Immediate-dominator computation (Cooper/Harvey/Kennedy iterative scheme)
// with dominance queries and nearest-common-dominator, used by TCM (§4.3.3)
// and TCFE (§4.4).
//
//===----------------------------------------------------------------------===//

#ifndef LLHD_ANALYSIS_DOMINATORS_H
#define LLHD_ANALYSIS_DOMINATORS_H

#include "ir/Unit.h"

#include <map>
#include <vector>

namespace llhd {

class CfgInfo;

/// Dominator tree over the blocks of one unit. Invalidated by CFG edits.
class DominatorTree {
public:
  explicit DominatorTree(Unit &U);
  /// Construction from a precomputed CFG ordering (the cached-analysis
  /// path: shares the RPO instead of re-walking the CFG).
  DominatorTree(Unit &U, const CfgInfo &Cfg);

  /// Immediate dominator; null for the entry block and unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True if instruction \p Def dominates the program point of \p UseSite.
  bool dominates(const Instruction *Def, const Instruction *UseSite) const;

  /// Nearest common dominator; null if either block is unreachable.
  BasicBlock *nearestCommonDominator(BasicBlock *A, BasicBlock *B) const;

  /// True if \p BB is reachable from the entry.
  bool isReachable(const BasicBlock *BB) const {
    return BB == Entry || idom(BB) != nullptr;
  }

private:
  void compute(const std::vector<BasicBlock *> &RPO);

  BasicBlock *Entry = nullptr;
  std::map<const BasicBlock *, BasicBlock *> IDom;
  std::map<const BasicBlock *, unsigned> RpoIndex;
};

} // namespace llhd

#endif // LLHD_ANALYSIS_DOMINATORS_H
