//===- analysis/Connectivity.cpp - Signal connectivity graph -------------===//

#include "analysis/Connectivity.h"
#include "analysis/TemporalRegions.h"
#include "ir/Module.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

using namespace llhd;

const char *llhd::driveDelayName(DriveDelay D) {
  switch (D) {
  case DriveDelay::Delta:
    return "delta";
  case DriveDelay::Physical:
    return "physical";
  case DriveDelay::Unknown:
    return "unknown";
  }
  return "?";
}

const char *llhd::activationClassName(ActivationClass C) {
  switch (C) {
  case ActivationClass::Combinational:
    return "comb";
  case ActivationClass::EdgeTriggered:
    return "edge";
  case ActivationClass::General:
    return "general";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// SigRef overlap
//===----------------------------------------------------------------------===//

bool llhd::sigRefsOverlap(const SigRef &A, const SigRef &B) {
  if (A.Sig != B.Sig)
    return false;
  // Walk the common element-path prefix; a divergence means the two refs
  // live in disjoint aggregate elements.
  size_t Common = std::min(A.Path.size(), B.Path.size());
  for (size_t I = 0; I != Common; ++I)
    if (A.Path[I] != B.Path[I])
      return false;
  // One path strictly inside the other: the deeper ref is one element of
  // the shallower one. If the shallower ref is an array slice, the next
  // path index of the deeper ref decides membership.
  if (A.Path.size() != B.Path.size()) {
    const SigRef &Shallow = A.Path.size() < B.Path.size() ? A : B;
    const SigRef &Deep = A.Path.size() < B.Path.size() ? B : A;
    uint32_t Elem = Deep.Path[Common];
    if (Shallow.ElemOff >= 0)
      return Elem >= static_cast<uint32_t>(Shallow.ElemOff) &&
             Elem < static_cast<uint32_t>(Shallow.ElemOff) + Shallow.ElemLen;
    // A bit slice of the whole aggregate element cannot coexist with an
    // element path below it; conservatively overlap.
    return true;
  }
  // Equal paths: compare the trailing ranges.
  if (A.ElemOff >= 0 && B.ElemOff >= 0)
    return static_cast<uint32_t>(A.ElemOff) < B.ElemOff + B.ElemLen &&
           static_cast<uint32_t>(B.ElemOff) < A.ElemOff + A.ElemLen;
  if (A.BitOff >= 0 && B.BitOff >= 0)
    return static_cast<uint32_t>(A.BitOff) < B.BitOff + B.BitLen &&
           static_cast<uint32_t>(B.BitOff) < A.BitOff + A.BitLen;
  // Whole element vs. any range, or mixed range kinds: overlap.
  return true;
}

std::string llhd::signalRefName(const Design &D, const SigRef &R) {
  if (!R.valid())
    return "<invalid>";
  std::string S = D.Signals.name(D.Signals.canonical(R.Sig));
  for (uint32_t E : R.Path)
    S += "[" + std::to_string(E) + "]";
  if (R.ElemOff >= 0)
    S += "[" + std::to_string(R.ElemOff + R.ElemLen - 1) + ":" +
         std::to_string(R.ElemOff) + "]";
  if (R.BitOff >= 0)
    S += "[" + std::to_string(R.BitOff + R.BitLen - 1) + ":" +
         std::to_string(R.BitOff) + "]";
  return S;
}

//===----------------------------------------------------------------------===//
// Per-instance graph construction
//===----------------------------------------------------------------------===//

namespace {

/// Dense bitset over the instance-local universe of probed references.
using Bits = std::vector<uint64_t>;

void setBit(Bits &B, uint32_t I) {
  if (B.size() <= I / 64)
    B.resize(I / 64 + 1, 0);
  B[I / 64] |= uint64_t(1) << (I % 64);
}

bool orInto(Bits &Dst, const Bits &Src) {
  if (Dst.size() < Src.size())
    Dst.resize(Src.size(), 0);
  bool Changed = false;
  for (size_t I = 0; I != Src.size(); ++I) {
    uint64_t Old = Dst[I];
    Dst[I] |= Src[I];
    Changed |= Dst[I] != Old;
  }
  return Changed;
}

template <typename Fn> void forEachBit(const Bits &B, Fn &&F) {
  for (size_t W = 0; W != B.size(); ++W)
    for (uint64_t Word = B[W]; Word; Word &= Word - 1)
      F(static_cast<uint32_t>(W * 64 + __builtin_ctzll(Word)));
}

/// Builds one Connectivity::Node from one elaborated instance.
class NodeBuilder {
public:
  NodeBuilder(const Design &D, uint32_t InstIdx, Connectivity::Node &N)
      : D(D), UI(D.Instances[InstIdx]), U(*UI.U), N(N) {
    N.Instance = InstIdx;
  }

  void run() {
    U.numberValues();
    collectRefs();
    computeValueDeps();
    computeReachability();
    computeControlDeps();
    classify();
    collectDrives();
    finalize();
  }

private:
  //===------------------------------------------------------------------===//
  // Signal reference chasing
  //===------------------------------------------------------------------===//

  /// Resolves a signal-typed SSA value to the set of storage references
  /// it can denote, chasing extf/exts/phi/mux chains back to bound
  /// arguments and elaborated sub-signals. Unresolvable values mark the
  /// node as having dynamic references.
  const std::vector<SigRef> &chase(const Value *V) {
    auto It = ChaseMemo.find(V);
    if (It != ChaseMemo.end())
      return It->second;
    // Seed the memo first so phi cycles terminate (they see the empty
    // in-progress set, which is the correct least fixpoint seed).
    auto &Slot = ChaseMemo[V];
    std::vector<SigRef> Out = chaseImpl(V);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    Slot = std::move(Out);
    return ChaseMemo[V];
  }

  std::vector<SigRef> chaseImpl(const Value *V) {
    auto BIt = UI.Bindings.find(V);
    if (BIt != UI.Bindings.end())
      return {D.Signals.resolve(BIt->second)};
    const auto *I = dyn_cast<Instruction>(V);
    if (!I) {
      N.HasDynamicRefs = true;
      return {};
    }
    switch (I->opcode()) {
    case Opcode::Extf: {
      std::vector<SigRef> Out;
      for (const SigRef &B : chase(I->operand(0))) {
        // Mirror Design.cpp's elaboration-time narrowing; where the
        // shape rules out a precise narrow, keep the base reference (a
        // superset — safe for dependence analysis).
        if (B.BitOff >= 0 ||
            (B.ElemOff >= 0 && I->immediate() >= B.ElemLen))
          Out.push_back(B);
        else
          Out.push_back(B.element(I->immediate()));
      }
      return Out;
    }
    case Opcode::Exts: {
      auto *ST = dyn_cast<SignalType>(I->type());
      if (!ST) {
        N.HasDynamicRefs = true;
        return {};
      }
      Type *Inner = ST->inner();
      std::vector<SigRef> Out;
      for (const SigRef &B : chase(I->operand(0))) {
        if (Inner->isArray()) {
          uint32_t Len = cast<ArrayType>(Inner)->length();
          if (B.BitOff >= 0 ||
              (B.ElemOff >= 0 && I->immediate() + Len > B.ElemLen))
            Out.push_back(B);
          else
            Out.push_back(B.elements(I->immediate(), Len));
        } else {
          uint32_t Len = Inner->bitWidth();
          if (B.ElemOff >= 0 ||
              (B.BitOff >= 0 && I->immediate() + Len > B.BitLen))
            Out.push_back(B);
          else
            Out.push_back(B.bits(I->immediate(), Len));
        }
      }
      return Out;
    }
    case Opcode::Phi: {
      std::vector<SigRef> Out;
      for (unsigned J = 0; J != I->numIncoming(); ++J) {
        const auto &In = chase(I->incomingValue(J));
        Out.insert(Out.end(), In.begin(), In.end());
      }
      return Out;
    }
    case Opcode::Mux:
      return chase(I->operand(0));
    case Opcode::ArrayCreate:
    case Opcode::StructCreate: {
      std::vector<SigRef> Out;
      for (unsigned J = 0; J != I->numOperands(); ++J) {
        const auto &In = chase(I->operand(J));
        Out.insert(Out.end(), In.begin(), In.end());
      }
      return Out;
    }
    default:
      N.HasDynamicRefs = true;
      return {};
    }
  }

  SignalId canon(SignalId S) const { return D.Signals.canonical(S); }

  uint32_t refIndex(const SigRef &R) {
    auto It = RefIdx.find(R);
    if (It != RefIdx.end())
      return It->second;
    uint32_t Idx = Refs.size();
    Refs.push_back(R);
    RefIdx[R] = Idx;
    return Idx;
  }

  //===------------------------------------------------------------------===//
  // Pass 1: reads, waits, the probed-reference universe
  //===------------------------------------------------------------------===//

  struct WaitInfo {
    const Instruction *I;
    const BasicBlock *Block;
    const BasicBlock *Dest;
    std::set<SignalId> Observed;
  };

  void collectRefs() {
    for (BasicBlock *BB : U.blocks()) {
      for (Instruction *I : BB->insts()) {
        switch (I->opcode()) {
        case Opcode::Prb: {
          const auto &Rs = chase(I->operand(0));
          if (Rs.empty() && I->operand(0)->type()->isSignal())
            N.HasDynamicRefs = true;
          std::vector<uint32_t> Idxs;
          for (const SigRef &R : Rs) {
            Idxs.push_back(refIndex(R));
            ReadSet.insert(canon(R.Sig));
          }
          ProbeMap[I] = Probes.size();
          Probes.push_back({I, Idxs});
          break;
        }
        case Opcode::Del: {
          // `del` continuously samples its source signal.
          for (const SigRef &R : chase(I->operand(1))) {
            refIndex(R);
            ReadSet.insert(canon(R.Sig));
          }
          break;
        }
        case Opcode::Wait: {
          WaitInfo W;
          W.I = I;
          W.Block = BB;
          W.Dest = I->waitDest();
          for (unsigned J = 1; J != I->numOperands(); ++J) {
            Value *Op = I->operand(J);
            if (Op->type()->isTime()) {
              N.TimeoutWaits = true;
              continue;
            }
            for (const SigRef &R : chase(Op))
              W.Observed.insert(canon(R.Sig));
          }
          Waits.push_back(std::move(W));
          break;
        }
        default:
          break;
        }
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 2: dataflow dependence (value -> probed references)
  //===------------------------------------------------------------------===//

  void computeValueDeps() {
    ValDeps.assign(U.numberValues(), {});
    // Iterate to a fixpoint: back edges (loops, phis) and the coarse
    // memory pool need re-propagation until stable.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : U.blocks()) {
        for (Instruction *I : BB->insts()) {
          Bits New;
          switch (I->opcode()) {
          case Opcode::Prb: {
            auto It = ProbeMap.find(I);
            if (It != ProbeMap.end())
              for (uint32_t Idx : Probes[It->second].second)
                setBit(New, Idx);
            break;
          }
          case Opcode::Phi:
            for (unsigned J = 0; J != I->numIncoming(); ++J)
              orInto(New, ValDeps[I->incomingValue(J)->valueNumber()]);
            break;
          case Opcode::St:
            // Coarse store pool: every ld sees every st.
            for (unsigned J = 0; J != I->numOperands(); ++J)
              Changed |= orInto(MemDeps, depsOfOperand(I->operand(J)));
            continue;
          case Opcode::Ld:
            orInto(New, MemDeps);
            for (unsigned J = 0; J != I->numOperands(); ++J)
              orInto(New, depsOfOperand(I->operand(J)));
            break;
          default:
            if (I->type()->isVoid())
              continue;
            for (unsigned J = 0; J != I->numOperands(); ++J)
              orInto(New, depsOfOperand(I->operand(J)));
            break;
          }
          Changed |= orInto(ValDeps[I->valueNumber()], New);
        }
      }
    }
  }

  const Bits &depsOfOperand(const Value *V) {
    static const Bits Empty;
    if (!V || isa<BasicBlock>(V))
      return Empty;
    return ValDeps[V->valueNumber()];
  }

  //===------------------------------------------------------------------===//
  // Pass 3: block reachability and control dependence
  //===------------------------------------------------------------------===//

  void computeReachability() {
    unsigned NB = U.blocks().size();
    Reach.assign(NB, std::vector<bool>(NB, false));
    for (BasicBlock *BB : U.blocks()) {
      std::deque<const BasicBlock *> Work{BB};
      auto &Row = Reach[BB->valueNumber()];
      Row[BB->valueNumber()] = true; // A block can resume into itself.
      while (!Work.empty()) {
        const BasicBlock *Cur = Work.front();
        Work.pop_front();
        for (BasicBlock *Succ : Cur->successors()) {
          if (Row[Succ->valueNumber()])
            continue;
          Row[Succ->valueNumber()] = true;
          Work.push_back(Succ);
        }
      }
    }
  }

  void computeControlDeps() {
    CtrlDeps.assign(U.blocks().size(), {});
    for (BasicBlock *BB : U.blocks()) {
      Instruction *T = BB->terminator();
      if (!T || !T->isConditionalBr())
        continue;
      const Bits &Dc = depsOfOperand(T->brCondition());
      const auto &Row = Reach[BB->valueNumber()];
      for (BasicBlock *Other : U.blocks())
        if (Row[Other->valueNumber()])
          orInto(CtrlDeps[Other->valueNumber()], Dc);
    }
  }

  //===------------------------------------------------------------------===//
  // Pass 4: activation classification
  //===------------------------------------------------------------------===//

  void classify() {
    if (U.isEntity()) {
      N.Act = ActivationClass::Combinational;
      return;
    }
    if (Waits.size() != 1 || N.TimeoutWaits) {
      N.Act = ActivationClass::General;
      return;
    }
    // One static wait, no timeout. Edge-triggered processes (the
    // always_ff lowering) sample a wake signal on both sides of the
    // wait — the probe appears in two distinct temporal regions. A
    // combinational process probes everything in the post-wait region
    // only.
    TemporalRegions TR(U);
    std::map<SignalId, std::set<unsigned>> ProbeRegions;
    for (const auto &P : Probes) {
      if (!TR.hasRegion(P.first->parent()))
        continue;
      unsigned R = TR.regionOf(P.first->parent());
      for (uint32_t Idx : P.second)
        ProbeRegions[canon(Refs[Idx].Sig)].insert(R);
    }
    for (SignalId S : Waits.front().Observed) {
      auto It = ProbeRegions.find(S);
      if (It != ProbeRegions.end() && It->second.size() >= 2) {
        N.Act = ActivationClass::EdgeTriggered;
        return;
      }
    }
    // Second shape: hand-written clock gating. If the process drives
    // signals but no observed signal ever feeds a driven *value* (wake
    // signals are used purely as branch gates — "wake on clk, bail on
    // the wrong level"), the wake set is a clock, not a data input.
    if (observedGatesOnly()) {
      N.Act = ActivationClass::EdgeTriggered;
      return;
    }
    N.Act = ActivationClass::Combinational;
  }

  /// True if the unit has drives and no observed signal contributes to
  /// any driven value (only to control flow around the drives).
  bool observedGatesOnly() {
    const std::set<SignalId> &Observed = Waits.front().Observed;
    bool AnyDrive = false;
    bool Feeds = false;
    auto valueFeeds = [&](const Bits &Deps) {
      forEachBit(Deps, [&](uint32_t Idx) {
        if (Observed.count(canon(Refs[Idx].Sig)))
          Feeds = true;
      });
    };
    for (BasicBlock *BB : U.blocks()) {
      for (Instruction *I : BB->insts()) {
        switch (I->opcode()) {
        case Opcode::Drv:
          AnyDrive = true;
          valueFeeds(depsOfOperand(I->operand(1)));
          break;
        case Opcode::Reg:
          AnyDrive = true;
          for (const RegTrigger &Tr : I->regTriggers())
            valueFeeds(depsOfOperand(I->operand(Tr.ValueIdx)));
          break;
        case Opcode::Del:
          AnyDrive = true;
          for (const SigRef &R : chase(I->operand(1)))
            if (Observed.count(canon(R.Sig)))
              Feeds = true;
          break;
        default:
          break;
        }
      }
    }
    return AnyDrive && !Feeds;
  }

  //===------------------------------------------------------------------===//
  // Pass 5: drives
  //===------------------------------------------------------------------===//

  DriveDelay classifyDelay(const Value *V) const {
    const auto *I = dyn_cast<Instruction>(V);
    if (!I || I->opcode() != Opcode::Const || !I->type()->isTime())
      return DriveDelay::Unknown;
    return I->timeValue().Fs == 0 ? DriveDelay::Delta : DriveDelay::Physical;
  }

  void addDrive(const Instruction *Origin, const SigRef &Target,
                DriveDelay Delay, const Bits &Deps, bool Sequential) {
    Connectivity::Drive Dr;
    Dr.Sig = canon(Target.Sig);
    Dr.Ref = Target;
    Dr.Delay = Delay;
    Dr.Sequential = Sequential || N.Act == ActivationClass::EdgeTriggered;
    Dr.Origin = Origin;

    std::set<SignalId> DepIds;
    std::set<SigRef> WakeRefs;
    forEachBit(Deps, [&](uint32_t Idx) {
      const SigRef &R = Refs[Idx];
      SignalId S = canon(R.Sig);
      DepIds.insert(S);
      if (U.isEntity()) {
        // Entities re-evaluate whenever any read changes.
        WakeRefs.insert(R);
        return;
      }
      // A dep can re-trigger the drive iff some wait observes it and the
      // drive can loop through that wait: the drive is reachable from
      // the wait's resume point and the wait from the drive.
      unsigned DB = Origin->parent()->valueNumber();
      for (const WaitInfo &W : Waits) {
        if (!W.Observed.count(S))
          continue;
        if (Reach[W.Dest->valueNumber()][DB] &&
            Reach[DB][W.Block->valueNumber()]) {
          WakeRefs.insert(R);
          break;
        }
      }
    });
    Dr.Deps.assign(DepIds.begin(), DepIds.end());
    for (const SigRef &R : WakeRefs) {
      Dr.WakeDepRefs.push_back(R);
      Dr.WakeDeps.push_back(canon(R.Sig));
    }
    std::sort(Dr.WakeDeps.begin(), Dr.WakeDeps.end());
    Dr.WakeDeps.erase(std::unique(Dr.WakeDeps.begin(), Dr.WakeDeps.end()),
                      Dr.WakeDeps.end());
    N.Drives.push_back(std::move(Dr));
  }

  void collectDrives() {
    for (BasicBlock *BB : U.blocks()) {
      for (Instruction *I : BB->insts()) {
        switch (I->opcode()) {
        case Opcode::Drv: {
          const auto &Targets = chase(I->operand(0));
          if (Targets.empty())
            N.HasDynamicRefs = true;
          Bits Deps = depsOfOperand(I->operand(1));
          if (I->numOperands() == 4)
            orInto(Deps, depsOfOperand(I->operand(3)));
          orInto(Deps, CtrlDeps[BB->valueNumber()]);
          DriveDelay Delay = classifyDelay(I->operand(2));
          for (const SigRef &T : Targets)
            addDrive(I, T, Delay, Deps, /*Sequential=*/false);
          break;
        }
        case Opcode::Del: {
          const auto &Targets = chase(I->operand(0));
          if (Targets.empty())
            N.HasDynamicRefs = true;
          Bits Deps;
          for (const SigRef &R : chase(I->operand(1)))
            setBit(Deps, refIndex(R));
          DriveDelay Delay = classifyDelay(I->operand(2));
          for (const SigRef &T : Targets)
            addDrive(I, T, Delay, Deps, /*Sequential=*/false);
          break;
        }
        case Opcode::Reg: {
          const auto &Targets = chase(I->operand(0));
          if (Targets.empty())
            N.HasDynamicRefs = true;
          for (const RegTrigger &Tr : I->regTriggers()) {
            Bits Deps = depsOfOperand(I->operand(Tr.ValueIdx));
            orInto(Deps, depsOfOperand(I->operand(Tr.TriggerIdx)));
            if (Tr.CondIdx >= 0)
              orInto(Deps, depsOfOperand(I->operand(Tr.CondIdx)));
            orInto(Deps, CtrlDeps[BB->valueNumber()]);
            DriveDelay Delay = Tr.DelayIdx >= 0
                                   ? classifyDelay(I->operand(Tr.DelayIdx))
                                   : DriveDelay::Delta;
            // Edge-mode triggers latch like a flip-flop and break
            // zero-delay cycles; level-mode (latch) triggers do not.
            bool Seq = Tr.Mode == RegMode::Rise || Tr.Mode == RegMode::Fall ||
                       Tr.Mode == RegMode::Both;
            for (const SigRef &T : Targets)
              addDrive(I, T, Delay, Deps, Seq);
          }
          break;
        }
        default:
          break;
        }
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Final node assembly
  //===------------------------------------------------------------------===//

  void finalize() {
    N.Reads.assign(ReadSet.begin(), ReadSet.end());

    if (U.isEntity()) {
      N.SteadyReads = N.Reads;
      // Entities implicitly wake on every read.
      N.Waits = N.Reads;
      return;
    }

    // Steady-state reads: probes in blocks reachable from some wait's
    // resume point.
    std::set<SignalId> Steady;
    for (const auto &P : Probes) {
      unsigned PB = P.first->parent()->valueNumber();
      bool AfterWait = false;
      for (const WaitInfo &W : Waits)
        if (Reach[W.Dest->valueNumber()][PB]) {
          AfterWait = true;
          break;
        }
      if (!AfterWait)
        continue;
      for (uint32_t Idx : P.second)
        Steady.insert(canon(Refs[Idx].Sig));
    }
    N.SteadyReads.assign(Steady.begin(), Steady.end());

    std::set<SignalId> Observed;
    for (const WaitInfo &W : Waits)
      Observed.insert(W.Observed.begin(), W.Observed.end());
    N.Waits.assign(Observed.begin(), Observed.end());
  }

  const Design &D;
  const UnitInstance &UI;
  Unit &U;
  Connectivity::Node &N;

  std::map<const Value *, std::vector<SigRef>> ChaseMemo;
  std::vector<SigRef> Refs; ///< The probed-reference universe.
  std::map<SigRef, uint32_t> RefIdx;
  std::vector<std::pair<const Instruction *, std::vector<uint32_t>>> Probes;
  std::map<const Instruction *, size_t> ProbeMap;
  std::vector<WaitInfo> Waits;
  std::set<SignalId> ReadSet;
  std::vector<Bits> ValDeps; ///< By dense value number.
  Bits MemDeps;              ///< Coarse var/ld/st pool.
  std::vector<Bits> CtrlDeps;
  std::vector<std::vector<bool>> Reach; ///< By dense block number.
};

} // namespace

Connectivity llhd::computeConnectivity(const Design &D) {
  Connectivity C;
  C.Nodes.resize(D.Instances.size());
  for (uint32_t I = 0; I != D.Instances.size(); ++I)
    NodeBuilder(D, I, C.Nodes[I]).run();

  C.ReadersOf.assign(D.Signals.size(), {});
  C.DriversOf.assign(D.Signals.size(), {});
  C.WaitersOf.assign(D.Signals.size(), {});
  for (uint32_t I = 0; I != C.Nodes.size(); ++I) {
    const Connectivity::Node &N = C.Nodes[I];
    for (SignalId S : N.Reads)
      C.ReadersOf[S].push_back(I);
    for (SignalId S : N.Waits)
      C.WaitersOf[S].push_back(I);
    std::set<SignalId> Driven;
    for (const Connectivity::Drive &Dr : N.Drives)
      if (Dr.Sig != InvalidSignal)
        Driven.insert(Dr.Sig);
    for (SignalId S : Driven)
      C.DriversOf[S].push_back(I);
  }
  return C;
}

std::string Connectivity::dump(const Design &D) const {
  std::ostringstream OS;
  auto sigList = [&](const std::vector<SignalId> &Sigs) {
    std::string Out;
    for (SignalId S : Sigs) {
      if (!Out.empty())
        Out += ", ";
      Out += D.Signals.name(S);
    }
    return Out.empty() ? std::string("-") : Out;
  };
  for (const Node &N : Nodes) {
    const UnitInstance &UI = D.Instances[N.Instance];
    OS << "node " << N.Instance << ": " << UI.HierName << " ("
       << (UI.U->isEntity() ? "entity" : "proc") << " @" << UI.U->name()
       << ") " << activationClassName(N.Act);
    if (N.HasDynamicRefs)
      OS << " dynamic-refs";
    if (N.TimeoutWaits)
      OS << " timeout-waits";
    OS << "\n";
    OS << "  reads: " << sigList(N.Reads) << "\n";
    if (N.SteadyReads != N.Reads)
      OS << "  steady-reads: " << sigList(N.SteadyReads) << "\n";
    OS << "  waits: " << sigList(N.Waits) << "\n";
    for (const Drive &Dr : N.Drives) {
      OS << "  drive " << signalRefName(D, Dr.Ref) << " ("
         << driveDelayName(Dr.Delay) << (Dr.Sequential ? ", seq" : "")
         << ") deps[" << sigList(Dr.Deps) << "] wake[" << sigList(Dr.WakeDeps)
         << "]\n";
    }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Analysis registration
//===----------------------------------------------------------------------===//

const void *ConnectivityAnalysis::key() {
  static char Key;
  return &Key;
}

Connectivity ConnectivityAnalysis::run(const Design &D,
                                       DesignAnalysisManager &) {
  return computeConnectivity(D);
}
