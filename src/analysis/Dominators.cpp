//===- analysis/Dominators.cpp - Dominator tree ----------------------------===//

#include "analysis/Dominators.h"
#include "analysis/Cfg.h"

using namespace llhd;

DominatorTree::DominatorTree(Unit &U) {
  if (!U.hasBody())
    return;
  Entry = U.entry();
  compute(reversePostOrder(U));
}

DominatorTree::DominatorTree(Unit &U, const CfgInfo &Cfg) {
  if (!U.hasBody())
    return;
  Entry = U.entry();
  compute(Cfg.rpo());
}

void DominatorTree::compute(const std::vector<BasicBlock *> &RPO) {
  for (unsigned I = 0; I != RPO.size(); ++I)
    RpoIndex[RPO[I]] = I;

  // Cooper/Harvey/Kennedy: iterate to fixpoint, intersecting along the
  // current idom chains.
  IDom[Entry] = Entry;
  auto intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = IDom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = IDom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : BB->predecessors()) {
        if (!IDom.count(P) || !IDom[P])
          continue; // Unprocessed or unreachable predecessor.
        NewIDom = NewIDom ? intersect(NewIDom, P) : P;
      }
      if (NewIDom && IDom[BB] != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  if (BB == Entry)
    return nullptr;
  auto It = IDom.find(BB);
  return It == IDom.end() ? nullptr : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (A == B)
    return true;
  const BasicBlock *Cur = B;
  while (const BasicBlock *D = idom(Cur)) {
    if (D == A)
      return true;
    Cur = D;
  }
  return false;
}

bool DominatorTree::dominates(const Instruction *Def,
                              const Instruction *UseSite) const {
  const BasicBlock *DefBB = Def->parent();
  const BasicBlock *UseBB = UseSite->parent();
  if (DefBB == UseBB)
    return DefBB->indexOf(Def) < UseBB->indexOf(UseSite);
  return dominates(DefBB, UseBB);
}

BasicBlock *DominatorTree::nearestCommonDominator(BasicBlock *A,
                                                  BasicBlock *B) const {
  if (!isReachable(A) || !isReachable(B))
    return nullptr;
  while (A != B) {
    auto AIt = RpoIndex.find(A);
    auto BIt = RpoIndex.find(B);
    if (AIt == RpoIndex.end() || BIt == RpoIndex.end())
      return nullptr;
    if (AIt->second < BIt->second)
      B = idom(B);
    else
      A = idom(A);
    if (!A || !B)
      return nullptr;
  }
  return A;
}
